//! The paper's three bitplane-encoding parallelization designs (§4).
//!
//! Each design is described by how it maps elements to GPU threads and what
//! that mapping costs architecturally:
//!
//! * [`DesignKind::LocalityBlock`] — one thread encodes a contiguous block
//!   of elements (ZFP-style). No communication, coalesced stores, but the
//!   *loads are strided* across lanes, and parallelism is `n / block`.
//!   Produces the [`Layout::Natural`] stream.
//! * [`DesignKind::RegisterShuffle`] — one thread per element; lanes
//!   exchange bits with one of four warp instructions (Figure 3): `ballot`,
//!   `shift` (tree OR-reduce), `match-any`, or `reduce-add` (native only on
//!   NVIDIA Hopper). Fully coalesced loads, maximal parallelism, but heavy
//!   cross-lane communication. Produces the [`Layout::Natural`] stream.
//! * [`DesignKind::RegisterBlock`] — one thread encodes 32 *interleaved*
//!   elements cached in registers: coalesced loads **and** stores with zero
//!   communication, at the price of tile-transposed bit order. Produces the
//!   [`Layout::Interleaved32`] stream.
//!
//! Functional outputs are produced by the shared native codecs, so streams
//! are bit-exact across devices by construction; the architectural event
//! counts are computed in closed form per warp and validated against a
//! lane-by-lane warp-exact execution in the test suite.

use crate::chunk::BitplaneChunk;
use crate::fixed::{align_exponent, BitplaneFloat};
use crate::layout::{Layout, WORD_BITS};
use crate::native::{self, Reconstruction};
use hpmdr_device::warp::strided_transactions;
use hpmdr_device::{DeviceConfig, KernelCounters, Warp};
use serde::{Deserialize, Serialize};

/// Register-shuffling instruction variant (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShuffleInstr {
    /// Warp vote; every lane receives the full mask (fewest instructions,
    /// broadcast partly wasted).
    Ballot,
    /// Classic tree OR-reduction over `log2(warp)` shuffle rounds.
    Shift,
    /// `match_any` vote; the storing lane may need one extra bit-flip.
    MatchAny,
    /// Warp sum of one-hot lane contributions; needs hardware `redux`.
    ReduceAdd,
}

impl ShuffleInstr {
    /// All four variants, in the paper's presentation order.
    pub const ALL: [ShuffleInstr; 4] = [
        ShuffleInstr::Ballot,
        ShuffleInstr::Shift,
        ShuffleInstr::MatchAny,
        ShuffleInstr::ReduceAdd,
    ];
}

/// One of the paper's three parallelization designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignKind {
    /// One thread per contiguous `block_elems` elements (multiple of 32).
    LocalityBlock {
        /// Elements per thread; the key tuning knob of this design.
        block_elems: usize,
    },
    /// One thread per element with a cross-lane exchange instruction.
    RegisterShuffle(ShuffleInstr),
    /// One thread per 32 interleaved elements held in registers.
    RegisterBlock,
}

impl DesignKind {
    /// Locality block with the paper's default block of 32 elements.
    pub fn locality_default() -> Self {
        DesignKind::LocalityBlock { block_elems: 32 }
    }

    /// Stream layout this design produces.
    pub fn layout(&self) -> Layout {
        match self {
            DesignKind::RegisterBlock => Layout::Interleaved32,
            _ => Layout::Natural,
        }
    }

    /// Whether the design can run on `cfg` (reduce-add needs hardware
    /// support; the paper evaluates only three variants on MI250X).
    pub fn supported_on(&self, cfg: &DeviceConfig) -> bool {
        match self {
            DesignKind::RegisterShuffle(ShuffleInstr::ReduceAdd) => cfg.has_reduce_add,
            _ => true,
        }
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            DesignKind::LocalityBlock { block_elems } => format!("locality-block({block_elems})"),
            DesignKind::RegisterShuffle(i) => format!("register-shuffle({i:?})"),
            DesignKind::RegisterBlock => "register-block".to_string(),
        }
    }
}

/// Result of a simulated encode: the portable stream plus the architectural
/// event counts of the producing kernel.
#[derive(Debug, Clone)]
pub struct EncodeOutcome {
    /// Encoded stream (identical across devices for a given design).
    pub chunk: BitplaneChunk,
    /// Kernel event counts for the cost model.
    pub counters: KernelCounters,
}

/// Result of a simulated decode.
#[derive(Debug, Clone)]
pub struct DecodeOutcome<F> {
    /// Reconstructed values.
    pub values: Vec<F>,
    /// Kernel event counts for the cost model.
    pub counters: KernelCounters,
}

impl DesignKind {
    /// Encode `data` on the simulated device `cfg`.
    ///
    /// # Panics
    /// Panics if the design is unsupported on `cfg` (see
    /// [`Self::supported_on`]) or if a locality block is not a positive
    /// multiple of 32.
    pub fn encode_sim<F: BitplaneFloat>(
        &self,
        cfg: &DeviceConfig,
        data: &[F],
        planes: usize,
    ) -> EncodeOutcome {
        assert!(
            self.supported_on(cfg),
            "{} unsupported on {}",
            self.label(),
            cfg.name
        );
        let planes = planes.min(F::MAX_PLANES).max(1);
        let chunk = native::encode(data, planes, self.layout());
        let b = chunk.num_planes();
        let counters = self.encode_counters(cfg, data.len(), b, std::mem::size_of::<F>().max(4));
        EncodeOutcome { chunk, counters }
    }

    /// Decode the first `k` planes of `chunk` on the simulated device.
    pub fn decode_sim<F: BitplaneFloat>(
        &self,
        cfg: &DeviceConfig,
        chunk: &BitplaneChunk,
        k: usize,
        recon: Reconstruction,
    ) -> DecodeOutcome<F> {
        assert!(
            self.supported_on(cfg),
            "{} unsupported on {}",
            self.label(),
            cfg.name
        );
        assert_eq!(
            chunk.layout,
            self.layout(),
            "{} cannot decode a {:?} stream",
            self.label(),
            chunk.layout
        );
        let values = native::decode_prefix::<F>(chunk, k, recon);
        let k = k.min(chunk.num_planes());
        let counters = self.decode_counters(cfg, chunk.n, k, std::mem::size_of::<F>().max(4));
        DecodeOutcome { values, counters }
    }

    /// Closed-form encode counters for `n` elements, `b` magnitude planes
    /// (plus the sign plane), and `s`-byte elements.
    pub fn encode_counters(
        &self,
        cfg: &DeviceConfig,
        n: usize,
        b: usize,
        s: usize,
    ) -> KernelCounters {
        let w = cfg.warp_size;
        let sector = cfg.sector_bytes;
        let mut c = KernelCounters::new();
        if n == 0 {
            return c;
        }
        let p = (b + 1) as u64; // magnitude planes + sign plane
        match *self {
            DesignKind::LocalityBlock { block_elems: m } => {
                assert!(
                    m >= 32 && m % 32 == 0,
                    "block must be a positive multiple of 32"
                );
                let elems_per_warp = w * m;
                let warps = n.div_ceil(elems_per_warp) as u64;
                c.warps_launched = warps;
                // Loads: m iterations; lanes stride m*s bytes apart.
                let tx_per_iter = strided_transactions(w, 0, m * s, s, sector);
                c.load_transactions = warps * m as u64 * tx_per_iter;
                c.load_bytes = warps * (elems_per_warp * s) as u64;
                // Per-lane work: fixed conversion + bit extract/or per plane.
                c.alu_ops = warps * (3 * m as u64 + p * m as u64 * 2);
                // Stores: per plane each lane writes m/32 consecutive words;
                // lanes together cover w*m/32 consecutive words.
                let words_per_warp_plane = w * m / WORD_BITS;
                let tx_store = strided_transactions(words_per_warp_plane.min(64), 0, 4, 4, sector)
                    .max(1)
                    * (words_per_warp_plane.div_ceil(64)) as u64;
                c.store_transactions = warps * p * tx_store;
                c.store_bytes = warps * p * (words_per_warp_plane * 4) as u64;
            }
            DesignKind::RegisterShuffle(instr) => {
                let warps = n.div_ceil(w) as u64;
                c.warps_launched = warps;
                c.load_transactions = warps * strided_transactions(w, 0, s, s, sector);
                c.load_bytes = warps * (w * s) as u64;
                c.alu_ops = warps * 3; // fixed conversion (per lane): 3
                let log32 = 5u64; // reduction rounds within each 32-lane group
                match instr {
                    ShuffleInstr::Ballot => {
                        c.ballot_ops = warps * p;
                        c.alu_ops += warps * p; // bit extract
                    }
                    ShuffleInstr::Shift => {
                        c.shuffle_ops = warps * p * log32;
                        c.alu_ops += warps * p * (1 + log32); // extract + OR per round
                    }
                    ShuffleInstr::MatchAny => {
                        c.ballot_ops = warps * p;
                        c.alu_ops += warps * p * 2; // extract + conditional flip
                    }
                    ShuffleInstr::ReduceAdd => {
                        c.reduce_ops = warps * p;
                        c.alu_ops += warps * p; // one-hot shift
                    }
                }
                // Per plane, the storing lane(s) write w/32 words.
                let words = (w / WORD_BITS).max(1) as u64;
                c.store_transactions = warps * p;
                c.scalar_stores = warps * p;
                c.store_bytes = warps * p * words * 4;
            }
            DesignKind::RegisterBlock => {
                let elems_per_warp = w * WORD_BITS;
                let warps = n.div_ceil(elems_per_warp) as u64;
                c.warps_launched = warps;
                // 32 coalesced load iterations.
                let tx_per_iter = strided_transactions(w, 0, s, s, sector);
                c.load_transactions = warps * WORD_BITS as u64 * tx_per_iter;
                c.load_bytes = warps * (elems_per_warp * s) as u64;
                // Per-lane: conversion + in-register 32x32 transpose.
                c.alu_ops = warps * (3 * WORD_BITS as u64 + TRANSPOSE_OPS + p);
                // p coalesced store iterations (lanes write adjacent words).
                let tx_store = strided_transactions(w, 0, 4, 4, sector);
                c.store_transactions = warps * p * tx_store;
                c.store_bytes = warps * p * (w * 4) as u64;
            }
        }
        c
    }

    /// Closed-form decode counters for `n` elements and a `k`-plane prefix
    /// (plus sign plane).
    pub fn decode_counters(
        &self,
        cfg: &DeviceConfig,
        n: usize,
        k: usize,
        s: usize,
    ) -> KernelCounters {
        let w = cfg.warp_size;
        let sector = cfg.sector_bytes;
        let mut c = KernelCounters::new();
        if n == 0 || k == 0 {
            return c;
        }
        let p = (k + 1) as u64;
        match *self {
            DesignKind::LocalityBlock { block_elems: m } => {
                assert!(
                    m >= 32 && m % 32 == 0,
                    "block must be a positive multiple of 32"
                );
                let elems_per_warp = w * m;
                let warps = n.div_ceil(elems_per_warp) as u64;
                c.warps_launched = warps;
                // Loads: plane words, coalesced.
                let words_per_warp_plane = w * m / WORD_BITS;
                let tx_load = strided_transactions(words_per_warp_plane.min(64), 0, 4, 4, sector)
                    .max(1)
                    * (words_per_warp_plane.div_ceil(64)) as u64;
                c.load_transactions = warps * p * tx_load;
                c.load_bytes = warps * p * (words_per_warp_plane * 4) as u64;
                c.alu_ops = warps * (3 * m as u64 + p * m as u64 * 2);
                // Stores: reconstructed elements, strided across lanes.
                let tx_per_iter = strided_transactions(w, 0, m * s, s, sector);
                c.store_transactions = warps * m as u64 * tx_per_iter;
                c.store_bytes = warps * (elems_per_warp * s) as u64;
            }
            DesignKind::RegisterShuffle(_) => {
                // Decoding is instruction-variant independent: per plane the
                // storing lane reloads the word (latency exposed), then
                // broadcasts it so each lane extracts its bit.
                let warps = n.div_ceil(w) as u64;
                c.warps_launched = warps;
                c.load_transactions = warps * p;
                c.scalar_loads = warps * p;
                c.load_bytes = warps * p * ((w / WORD_BITS).max(1) * 4) as u64;
                c.shuffle_ops = warps * p; // broadcast
                c.alu_ops = warps * (p * 3 + 3); // extract + accumulate + finalize
                c.store_transactions = warps * strided_transactions(w, 0, s, s, sector);
                c.store_bytes = warps * (w * s) as u64;
            }
            DesignKind::RegisterBlock => {
                let elems_per_warp = w * WORD_BITS;
                let warps = n.div_ceil(elems_per_warp) as u64;
                c.warps_launched = warps;
                let tx_load = strided_transactions(w, 0, 4, 4, sector);
                c.load_transactions = warps * p * tx_load;
                c.load_bytes = warps * p * (w * 4) as u64;
                c.alu_ops = warps * (3 * WORD_BITS as u64 + TRANSPOSE_OPS + p);
                let tx_store = strided_transactions(w, 0, s, s, sector);
                c.store_transactions = warps * WORD_BITS as u64 * tx_store;
                c.store_bytes = warps * (elems_per_warp * s) as u64;
            }
        }
        c
    }
}

/// Word operations of one in-register 32×32 bit transpose (five masked
/// swap stages over 32 words).
const TRANSPOSE_OPS: u64 = 240;

/// Warp-exact register-shuffling encoder used to validate (a) that every
/// instruction variant produces the identical natural-layout stream and
/// (b) that the closed-form counters match a lane-by-lane execution.
///
/// Intended for tests and small inputs; `encode_sim` is the fast path.
pub fn shuffle_encode_warp_exact<F: BitplaneFloat>(
    cfg: &DeviceConfig,
    instr: ShuffleInstr,
    data: &[F],
    planes: usize,
) -> EncodeOutcome {
    let design = DesignKind::RegisterShuffle(instr);
    assert!(
        design.supported_on(cfg),
        "{} unsupported on {}",
        design.label(),
        cfg.name
    );
    let b = planes.min(F::MAX_PLANES).max(1);
    let exp = align_exponent(data);
    if exp == i32::MIN {
        return EncodeOutcome {
            chunk: BitplaneChunk::zero::<F>(data.len(), Layout::Natural),
            counters: KernelCounters::new(),
        };
    }
    let n = data.len();
    let w = cfg.warp_size;
    let s = std::mem::size_of::<F>().max(4);
    let words = Layout::Natural.words_per_plane(n);
    let mut arena = vec![0u32; b * words];
    let mut signs = vec![0u32; words];
    let mut counters = KernelCounters::new();

    let mut aligned = vec![0u64; w];
    let mut negs = vec![false; w];
    for warp_idx in 0..n.div_ceil(w) {
        let base = warp_idx * w;
        let mut warp = Warp::new(w);
        for lane in 0..w {
            let e = base + lane;
            if e < n {
                aligned[lane] = data[e].to_fixed(exp, b) << (64 - b);
                negs[lane] = data[e].is_neg();
            } else {
                aligned[lane] = 0;
                negs[lane] = false;
            }
        }
        warp.load_strided(base * s, s, s, cfg.sector_bytes);
        warp.alu(3);
        // Plane index 0 encodes the sign plane; 1..=b the magnitude planes.
        for p in 0..=b {
            let mut bits = vec![false; w];
            for lane in 0..w {
                bits[lane] = if p == 0 {
                    negs[lane]
                } else {
                    (aligned[lane] >> (64 - p)) & 1 == 1
                };
            }
            let group_words = exchange_bits(&mut warp, instr, &bits);
            for (j, word) in group_words.iter().enumerate() {
                let g = warp_idx * (w / WORD_BITS) + j;
                if g >= words {
                    continue;
                }
                if p == 0 {
                    signs[g] = *word;
                } else {
                    arena[(p - 1) * words + g] = *word;
                }
            }
            warp.store_scalar((w / WORD_BITS) * 4);
        }
        counters += warp.counters;
    }

    // Mask padding bits so streams match the native encoder exactly.
    if !n.is_multiple_of(WORD_BITS) {
        let mask = (1u32 << (n % WORD_BITS)) - 1;
        let last = words - 1;
        signs[last] &= mask;
        for p in 0..b {
            arena[p * words + last] &= mask;
        }
    }

    EncodeOutcome {
        chunk: BitplaneChunk::from_arena(
            n,
            exp,
            Layout::Natural,
            F::TYPE_NAME.to_string(),
            signs,
            b,
            arena,
        ),
        counters,
    }
}

/// Warp-exact register-block encoder: every lane gathers its 32
/// interleaved elements, aligns them in "registers", transposes them
/// lane-locally (no cross-lane communication — the design's defining
/// property), and stores its per-plane words. Validates that the
/// [`Layout::Interleaved32`] stream specification is exactly what the
/// lane-level kernel produces, and that the closed-form counters match a
/// lane-by-lane execution.
pub fn register_block_encode_warp_exact<F: BitplaneFloat>(
    cfg: &DeviceConfig,
    data: &[F],
    planes: usize,
) -> EncodeOutcome {
    let b = planes.min(F::MAX_PLANES).max(1);
    let exp = align_exponent(data);
    if exp == i32::MIN {
        return EncodeOutcome {
            chunk: BitplaneChunk::zero::<F>(data.len(), Layout::Interleaved32),
            counters: KernelCounters::new(),
        };
    }
    let n = data.len();
    let w = cfg.warp_size;
    let s = std::mem::size_of::<F>().max(4);
    let layout = Layout::Interleaved32;
    let words = layout.words_per_plane(n);
    let mut arena = vec![0u32; b * words];
    let mut signs = vec![0u32; words];
    let mut counters = KernelCounters::new();

    let elems_per_warp = w * WORD_BITS;
    for warp_idx in 0..n.div_ceil(elems_per_warp) {
        let mut warp = Warp::new(w);
        // 32 coalesced load iterations (lane l reads element base + j*w + l
        // in flat order, which the tile mapping makes consecutive).
        for _ in 0..WORD_BITS {
            warp.load_strided(0, s, s, cfg.sector_bytes);
        }
        warp.alu(3 * WORD_BITS as u64 + 240 + (b as u64 + 1));
        // Lane-local work: each lane owns word column `t` of its tile.
        for lane in 0..w {
            let tile = warp_idx * (w / WORD_BITS) + lane / WORD_BITS;
            let t = lane % WORD_BITS;
            let word_idx = tile * WORD_BITS + t;
            if word_idx >= words {
                continue;
            }
            // Gather this lane's 32 interleaved elements into "registers".
            let mut regs = [0u64; WORD_BITS];
            let mut sign_word = 0u32;
            for (j, reg) in regs.iter_mut().enumerate() {
                let e = tile * (WORD_BITS * WORD_BITS) + j * WORD_BITS + t;
                if e < n {
                    *reg = data[e].to_fixed(exp, b) << (64 - b);
                    sign_word |= (data[e].is_neg() as u32) << j;
                }
            }
            // Lane-local transpose: plane p's bit j is bit (63-p) of reg j.
            for p in 0..b {
                let mut word = 0u32;
                for (j, reg) in regs.iter().enumerate() {
                    word |= (((reg >> (63 - p)) & 1) as u32) << j;
                }
                arena[p * words + word_idx] = word;
            }
            signs[word_idx] = sign_word;
        }
        // b+1 coalesced store iterations (lanes write adjacent words).
        for _ in 0..=b {
            warp.store_strided(0, 4, 4, cfg.sector_bytes);
        }
        counters += warp.counters;
    }
    // Align byte accounting with the closed form (loads/stores are counted
    // per warp over the full tile regardless of tail masking).
    counters.load_bytes = counters.warps_launched * (elems_per_warp * s) as u64;
    counters.store_bytes = counters.warps_launched * ((b + 1) * w * 4) as u64;

    EncodeOutcome {
        chunk: BitplaneChunk::from_arena(n, exp, layout, F::TYPE_NAME.to_string(), signs, b, arena),
        counters,
    }
}

/// Exchange one bit per lane into per-32-group words using `instr`,
/// booking the exact warp operations performed.
fn exchange_bits(warp: &mut Warp, instr: ShuffleInstr, bits: &[bool]) -> Vec<u32> {
    let w = warp.width();
    let groups = (w / WORD_BITS).max(1);
    match instr {
        ShuffleInstr::Ballot => {
            warp.alu(1);
            let mask = warp.ballot(bits);
            (0..groups).map(|j| (mask >> (32 * j)) as u32).collect()
        }
        ShuffleInstr::Shift => {
            warp.alu(1);
            let mut vals: Vec<u64> = bits
                .iter()
                .enumerate()
                .map(|(lane, &bit)| (bit as u64) << (lane % WORD_BITS))
                .collect();
            let mut delta = WORD_BITS / 2;
            while delta >= 1 {
                let mut shifted = vals.clone();
                warp.shfl_down(&mut shifted, delta);
                warp.alu(1);
                for lane in 0..w {
                    vals[lane] |= shifted[lane];
                }
                delta /= 2;
            }
            (0..groups).map(|j| vals[j * WORD_BITS] as u32).collect()
        }
        ShuffleInstr::MatchAny => {
            warp.alu(2);
            let vals: Vec<u64> = bits.iter().map(|&b| b as u64).collect();
            let mut out = vec![0u64; w];
            warp.match_any(&vals, &mut out);
            (0..groups)
                .map(|j| {
                    // The storing lane for group j is its lane 0; restrict
                    // the match mask to the group's 32 lanes and flip when
                    // the storing lane holds a 0 bit.
                    let lane = j * WORD_BITS;
                    let group_mask = (out[lane] >> (32 * j)) as u32;
                    if bits[lane] {
                        group_mask
                    } else {
                        !group_mask
                    }
                })
                .collect()
        }
        ShuffleInstr::ReduceAdd => {
            warp.alu(1);
            assert_eq!(w, WORD_BITS, "reduce-add exchange defined per 32-lane warp");
            let vals: Vec<u64> = bits
                .iter()
                .enumerate()
                .map(|(lane, &bit)| (bit as u64) << lane)
                .collect();
            vec![warp.reduce_add(&vals) as u32]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmdr_device::CostModel;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.173).sin() * 5.0 - 1.0)
            .collect()
    }

    fn h100() -> DeviceConfig {
        DeviceConfig::h100_like()
    }
    fn mi250x() -> DeviceConfig {
        DeviceConfig::mi250x_like()
    }

    #[test]
    fn all_designs_produce_decodable_streams() {
        let data = field(5000);
        for design in [
            DesignKind::locality_default(),
            DesignKind::RegisterShuffle(ShuffleInstr::Ballot),
            DesignKind::RegisterBlock,
        ] {
            let out = design.encode_sim(&h100(), &data, 32);
            out.chunk.validate().unwrap();
            let dec = design.decode_sim::<f32>(&h100(), &out.chunk, 32, Reconstruction::Truncate);
            let bound = crate::fixed::prefix_error_bound(out.chunk.exp, 32);
            for (a, b) in data.iter().zip(&dec.values) {
                assert!(((a - b).abs() as f64) <= bound, "{}", design.label());
            }
        }
    }

    #[test]
    fn natural_designs_produce_identical_streams() {
        let data = field(3000);
        let lb = DesignKind::locality_default().encode_sim(&h100(), &data, 32);
        for instr in ShuffleInstr::ALL {
            let rs = DesignKind::RegisterShuffle(instr).encode_sim(&h100(), &data, 32);
            assert_eq!(lb.chunk, rs.chunk, "{instr:?}");
        }
    }

    #[test]
    fn streams_are_identical_across_devices() {
        // The portability property: H100-like and MI250X-like devices must
        // produce byte-identical streams for every design they support.
        let data = field(4096 + 37);
        for design in [
            DesignKind::locality_default(),
            DesignKind::RegisterShuffle(ShuffleInstr::Ballot),
            DesignKind::RegisterShuffle(ShuffleInstr::Shift),
            DesignKind::RegisterShuffle(ShuffleInstr::MatchAny),
            DesignKind::RegisterBlock,
        ] {
            let a = design.encode_sim(&h100(), &data, 32);
            let b = design.encode_sim(&mi250x(), &data, 32);
            assert_eq!(a.chunk, b.chunk, "{}", design.label());
        }
    }

    #[test]
    fn warp_exact_shuffle_matches_native_stream_h100() {
        let data = field(2048 + 9);
        let native = native::encode(&data, 32, Layout::Natural);
        for instr in ShuffleInstr::ALL {
            let out = shuffle_encode_warp_exact(&h100(), instr, &data, 32);
            assert_eq!(out.chunk, native, "{instr:?}");
        }
    }

    #[test]
    fn warp_exact_shuffle_matches_native_stream_mi250x() {
        let data = field(1024 + 63);
        for instr in [
            ShuffleInstr::Ballot,
            ShuffleInstr::Shift,
            ShuffleInstr::MatchAny,
        ] {
            let out = shuffle_encode_warp_exact(&mi250x(), instr, &data, 32);
            let native = native::encode(&data, 32, Layout::Natural);
            assert_eq!(out.chunk, native, "{instr:?}");
        }
    }

    #[test]
    fn warp_exact_counters_match_closed_form() {
        let data = field(32 * 50);
        for instr in ShuffleInstr::ALL {
            let design = DesignKind::RegisterShuffle(instr);
            let exact = shuffle_encode_warp_exact(&h100(), instr, &data, 32);
            let closed = design.encode_counters(&h100(), data.len(), 32, 4);
            assert_eq!(exact.counters.ballot_ops, closed.ballot_ops, "{instr:?}");
            assert_eq!(exact.counters.shuffle_ops, closed.shuffle_ops, "{instr:?}");
            assert_eq!(exact.counters.reduce_ops, closed.reduce_ops, "{instr:?}");
            assert_eq!(
                exact.counters.warps_launched, closed.warps_launched,
                "{instr:?}"
            );
            assert_eq!(exact.counters.store_bytes, closed.store_bytes, "{instr:?}");
        }
    }

    #[test]
    fn warp_exact_register_block_matches_native_stream() {
        // The lane-level kernel must produce exactly the Interleaved32
        // stream specification, on both lane widths, including tails.
        for n in [1024usize, 2048 + 777, 5000] {
            let data = field(n);
            let native = native::encode(&data, 32, Layout::Interleaved32);
            for cfg in [h100(), mi250x()] {
                let out = register_block_encode_warp_exact(&cfg, &data, 32);
                assert_eq!(out.chunk, native, "{} n={n}", cfg.name);
            }
        }
    }

    #[test]
    fn warp_exact_register_block_counters_match_closed_form() {
        let data = field(32 * 32 * 6); // whole warps on both widths
        for cfg in [h100(), mi250x()] {
            let exact = register_block_encode_warp_exact(&cfg, &data, 32);
            let closed = DesignKind::RegisterBlock.encode_counters(&cfg, data.len(), 32, 4);
            assert_eq!(exact.counters, closed, "{}", cfg.name);
        }
    }

    #[test]
    fn reduce_add_rejected_on_rocm() {
        let design = DesignKind::RegisterShuffle(ShuffleInstr::ReduceAdd);
        assert!(!design.supported_on(&mi250x()));
        assert!(design.supported_on(&h100()));
    }

    #[test]
    fn register_block_fastest_at_large_size() {
        // The headline Figure 7 ordering at large input sizes:
        // register block > locality block > register shuffling.
        let n = 1 << 22;
        for cfg in [h100(), mi250x()] {
            let rb = DesignKind::RegisterBlock.encode_counters(&cfg, n, 32, 4);
            let lb = DesignKind::locality_default().encode_counters(&cfg, n, 32, 4);
            let rs =
                DesignKind::RegisterShuffle(ShuffleInstr::Ballot).encode_counters(&cfg, n, 32, 4);
            let t_rb = CostModel::kernel_time(&cfg, &rb);
            let t_lb = CostModel::kernel_time(&cfg, &lb);
            let t_rs = CostModel::kernel_time(&cfg, &rs);
            assert!(t_rb < t_lb, "{}: rb {t_rb} vs lb {t_lb}", cfg.name);
            assert!(t_lb < t_rs, "{}: lb {t_lb} vs rs {t_rs}", cfg.name);
        }
    }

    #[test]
    fn decode_penalizes_locality_more_than_encode() {
        // Figure 7: the register-block advantage over locality block is
        // larger for decoding than encoding (scattered stores).
        let n = 1 << 22;
        let cfg = h100();
        let rb_e = CostModel::kernel_time(
            &cfg,
            &DesignKind::RegisterBlock.encode_counters(&cfg, n, 32, 4),
        );
        let lb_e = CostModel::kernel_time(
            &cfg,
            &DesignKind::locality_default().encode_counters(&cfg, n, 32, 4),
        );
        let rb_d = CostModel::kernel_time(
            &cfg,
            &DesignKind::RegisterBlock.decode_counters(&cfg, n, 32, 4),
        );
        let lb_d = CostModel::kernel_time(
            &cfg,
            &DesignKind::locality_default().decode_counters(&cfg, n, 32, 4),
        );
        assert!(lb_d / rb_d > lb_e / rb_e);
    }

    #[test]
    fn shuffle_parallelism_advantage_at_small_sizes() {
        // §4.2: for small inputs the one-element-per-thread designs launch
        // far more warps than locality block, hence better occupancy.
        let cfg = h100();
        let n = 1 << 12;
        let rs = DesignKind::RegisterShuffle(ShuffleInstr::Ballot).encode_counters(&cfg, n, 32, 4);
        let lb = DesignKind::locality_default().encode_counters(&cfg, n, 32, 4);
        assert!(rs.warps_launched > 8 * lb.warps_launched);
    }

    #[test]
    fn empty_input_yields_empty_counters() {
        let c = DesignKind::RegisterBlock.encode_counters(&h100(), 0, 32, 4);
        assert_eq!(c, KernelCounters::new());
    }

    #[test]
    #[should_panic]
    fn locality_block_requires_multiple_of_32() {
        DesignKind::LocalityBlock { block_elems: 17 }.encode_counters(&h100(), 1024, 32, 4);
    }

    #[test]
    #[should_panic]
    fn decode_layout_mismatch_panics() {
        let data = field(256);
        let chunk = native::encode(&data, 32, Layout::Interleaved32);
        DesignKind::locality_default().decode_sim::<f32>(
            &h100(),
            &chunk,
            32,
            Reconstruction::Truncate,
        );
    }
}
