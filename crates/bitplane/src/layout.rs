//! Stream layouts: where each element's bit lands in each plane word.
//!
//! A layout is a pure function from element index to `(word, bit)`
//! position, fixed by the stream specification and *independent of the
//! device that produced the stream*. Two layouts exist:
//!
//! * [`Layout::Natural`] — plane word `g` covers elements `32g..32g+32`,
//!   bit `i` within the word is element `32g+i`. Produced by the
//!   locality-block and register-shuffling designs; preserves spatial
//!   locality of the input in the bit order, which helps downstream
//!   lossless compression.
//! * [`Layout::Interleaved32`] — within each tile of `32×32 = 1024`
//!   elements, element `t + 32j` maps to bit `j` of tile word `t`.
//!   Produced by the register-block design: each simulated thread owns 32
//!   interleaved elements so loads coalesce and no cross-lane
//!   communication is needed; the cost is that bit correlation is only
//!   preserved within each tile (the paper's `warp_size × B` region).

use serde::{Deserialize, Serialize};

/// Elements covered by one plane word.
pub const WORD_BITS: usize = 32;
/// Elements covered by one interleaved tile (32 threads × 32 elements).
pub const TILE_ELEMS: usize = WORD_BITS * WORD_BITS;

/// Bit-placement rule of an encoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Layout {
    /// Locality-preserving layout (locality-block / register-shuffling).
    Natural,
    /// Tile-transposed layout (register-block design).
    #[default]
    Interleaved32,
}

impl Layout {
    /// Number of `u32` words each plane occupies for `n` elements.
    pub fn words_per_plane(self, n: usize) -> usize {
        match self {
            Layout::Natural => n.div_ceil(WORD_BITS),
            // Interleaved tiles are whole: 32 words per started tile.
            Layout::Interleaved32 => n.div_ceil(TILE_ELEMS) * WORD_BITS,
        }
    }

    /// Map element index `i` to its `(word, bit)` position within a plane.
    pub fn position(self, i: usize) -> (usize, usize) {
        match self {
            Layout::Natural => (i / WORD_BITS, i % WORD_BITS),
            Layout::Interleaved32 => {
                let tile = i / TILE_ELEMS;
                let within = i % TILE_ELEMS;
                let t = within % WORD_BITS; // owning thread = word in tile
                let j = within / WORD_BITS; // element slot = bit position
                (tile * WORD_BITS + t, j)
            }
        }
    }

    /// The words of an `n`-element plane that carry padding bits, with a
    /// mask of those bits (set = padding). Padding only ever lives in the
    /// last word (natural) or last tile (interleaved), so the list stays
    /// O(1)-small and validation can check whole words with one `&` each
    /// instead of walking every bit of every word.
    pub fn padding_masks(self, n: usize) -> Vec<(usize, u32)> {
        match self {
            Layout::Natural => {
                if n.is_multiple_of(WORD_BITS) {
                    Vec::new()
                } else {
                    vec![(n / WORD_BITS, !0u32 << (n % WORD_BITS))]
                }
            }
            Layout::Interleaved32 => {
                let rem = n % TILE_ELEMS;
                if rem == 0 {
                    return Vec::new();
                }
                let tile = n / TILE_ELEMS;
                let mut out = Vec::new();
                for t in 0..WORD_BITS {
                    // Bit j of tile word t is element tile·1024 + j·32 + t,
                    // valid while j·32 + t < rem.
                    let valid = if t < rem {
                        (rem - t).div_ceil(WORD_BITS)
                    } else {
                        0
                    };
                    if valid < WORD_BITS {
                        let mask = if valid == 0 { !0u32 } else { !0u32 << valid };
                        out.push((tile * WORD_BITS + t, mask));
                    }
                }
                out
            }
        }
    }

    /// Inverse of [`Self::position`].
    pub fn element(self, word: usize, bit: usize) -> usize {
        match self {
            Layout::Natural => word * WORD_BITS + bit,
            Layout::Interleaved32 => {
                let tile = word / WORD_BITS;
                let t = word % WORD_BITS;
                tile * TILE_ELEMS + bit * WORD_BITS + t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_positions_are_contiguous() {
        assert_eq!(Layout::Natural.position(0), (0, 0));
        assert_eq!(Layout::Natural.position(31), (0, 31));
        assert_eq!(Layout::Natural.position(32), (1, 0));
        assert_eq!(Layout::Natural.position(100), (3, 4));
    }

    #[test]
    fn interleaved_positions_transpose_within_tile() {
        let l = Layout::Interleaved32;
        // Element 0 -> word 0 bit 0; element 1 -> word 1 bit 0 (next thread).
        assert_eq!(l.position(0), (0, 0));
        assert_eq!(l.position(1), (1, 0));
        // Element 32 is thread 0's second element -> word 0 bit 1.
        assert_eq!(l.position(32), (0, 1));
        // First element of the second tile.
        assert_eq!(l.position(TILE_ELEMS), (32, 0));
    }

    #[test]
    fn position_element_roundtrip_both_layouts() {
        for layout in [Layout::Natural, Layout::Interleaved32] {
            for i in (0..5000).step_by(7) {
                let (w, b) = layout.position(i);
                assert_eq!(layout.element(w, b), i, "{layout:?} i={i}");
            }
        }
    }

    #[test]
    fn words_per_plane_rounding() {
        assert_eq!(Layout::Natural.words_per_plane(1), 1);
        assert_eq!(Layout::Natural.words_per_plane(32), 1);
        assert_eq!(Layout::Natural.words_per_plane(33), 2);
        assert_eq!(Layout::Interleaved32.words_per_plane(1), 32);
        assert_eq!(Layout::Interleaved32.words_per_plane(1024), 32);
        assert_eq!(Layout::Interleaved32.words_per_plane(1025), 64);
    }

    #[test]
    fn padding_masks_match_per_bit_definition() {
        for layout in [Layout::Natural, Layout::Interleaved32] {
            for n in [1usize, 31, 32, 33, 100, 1023, 1024, 1025, 2048 + 17] {
                let words = layout.words_per_plane(n);
                // Brute-force reference: bit-by-bit padding classification.
                let mut reference = vec![0u32; words];
                for (word, mask) in reference.iter_mut().enumerate() {
                    for bit in 0..WORD_BITS {
                        if layout.element(word, bit) >= n {
                            *mask |= 1u32 << bit;
                        }
                    }
                }
                let mut from_masks = vec![0u32; words];
                for (word, mask) in layout.padding_masks(n) {
                    from_masks[word] = mask;
                }
                assert_eq!(from_masks, reference, "{layout:?} n={n}");
            }
        }
    }

    #[test]
    fn positions_are_injective_within_capacity() {
        for layout in [Layout::Natural, Layout::Interleaved32] {
            let n = 2048 + 17;
            let words = layout.words_per_plane(n);
            let mut seen = vec![false; words * WORD_BITS];
            for i in 0..n {
                let (w, b) = layout.position(i);
                assert!(w < words, "{layout:?}: word {w} out of range");
                let slot = w * WORD_BITS + b;
                assert!(!seen[slot], "{layout:?}: collision at element {i}");
                seen[slot] = true;
            }
        }
    }
}
