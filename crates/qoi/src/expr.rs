//! QoI expression language.
//!
//! Covers the base QoI families of \[39\] that the paper's retrieval
//! workflow supports: variables, constants, linear combinations, products,
//! squares, square roots, and absolute values. Expressions are evaluated
//! pointwise (a constant number of operations per grid point, which is why
//! the paper notes the QoI estimation kernel is fast on GPUs).

use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// A pointwise quantity of interest over `n` variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QoiExpr {
    /// The `i`-th input variable.
    Var(usize),
    /// A constant.
    Const(f64),
    /// Sum of two sub-expressions.
    Add(Box<QoiExpr>, Box<QoiExpr>),
    /// Difference of two sub-expressions.
    Sub(Box<QoiExpr>, Box<QoiExpr>),
    /// Product of two sub-expressions.
    Mul(Box<QoiExpr>, Box<QoiExpr>),
    /// Scaling by a constant.
    Scale(f64, Box<QoiExpr>),
    /// Square.
    Square(Box<QoiExpr>),
    /// Square root (operands clamped at zero).
    Sqrt(Box<QoiExpr>),
    /// Absolute value.
    Abs(Box<QoiExpr>),
    /// Natural log with the operand clamped to a positive floor
    /// (`log ρ` style QoIs on positive fields).
    Ln {
        /// Operand.
        arg: Box<QoiExpr>,
        /// Positive clamp floor.
        floor: f64,
    },
}

impl QoiExpr {
    /// `√(Σ_i x_i²)` over `nvars` variables — the paper's `V_total`.
    pub fn vector_magnitude(nvars: usize) -> Self {
        assert!(nvars >= 1, "magnitude needs at least one variable");
        let mut sum = QoiExpr::Square(Box::new(QoiExpr::Var(0)));
        for i in 1..nvars {
            sum = QoiExpr::Add(
                Box::new(sum),
                Box::new(QoiExpr::Square(Box::new(QoiExpr::Var(i)))),
            );
        }
        QoiExpr::Sqrt(Box::new(sum))
    }

    /// Kinetic-energy-like QoI `½ Σ_i x_i²`.
    pub fn kinetic_energy(nvars: usize) -> Self {
        assert!(nvars >= 1);
        let mut sum = QoiExpr::Square(Box::new(QoiExpr::Var(0)));
        for i in 1..nvars {
            sum = QoiExpr::Add(
                Box::new(sum),
                Box::new(QoiExpr::Square(Box::new(QoiExpr::Var(i)))),
            );
        }
        QoiExpr::Scale(0.5, Box::new(sum))
    }

    /// `log(x_0)` clamped at `floor` (a \[39\] base QoI family).
    pub fn log_density(floor: f64) -> Self {
        QoiExpr::Ln {
            arg: Box::new(QoiExpr::Var(0)),
            floor,
        }
    }

    /// Linear combination `Σ c_i x_i`.
    pub fn linear(coeffs: &[f64]) -> Self {
        assert!(!coeffs.is_empty());
        let mut acc = QoiExpr::Scale(coeffs[0], Box::new(QoiExpr::Var(0)));
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            acc = QoiExpr::Add(
                Box::new(acc),
                Box::new(QoiExpr::Scale(c, Box::new(QoiExpr::Var(i)))),
            );
        }
        acc
    }

    /// Number of variables referenced (max index + 1).
    pub fn num_vars(&self) -> usize {
        match self {
            QoiExpr::Var(i) => i + 1,
            QoiExpr::Const(_) => 0,
            QoiExpr::Add(a, b) | QoiExpr::Sub(a, b) | QoiExpr::Mul(a, b) => {
                a.num_vars().max(b.num_vars())
            }
            QoiExpr::Scale(_, a) | QoiExpr::Square(a) | QoiExpr::Sqrt(a) | QoiExpr::Abs(a) => {
                a.num_vars()
            }
            QoiExpr::Ln { arg, .. } => arg.num_vars(),
        }
    }

    /// Operation count per point (used by the simulated QoI kernel cost).
    pub fn op_count(&self) -> usize {
        match self {
            QoiExpr::Var(_) | QoiExpr::Const(_) => 0,
            QoiExpr::Add(a, b) | QoiExpr::Sub(a, b) | QoiExpr::Mul(a, b) => {
                1 + a.op_count() + b.op_count()
            }
            QoiExpr::Scale(_, a) | QoiExpr::Square(a) | QoiExpr::Abs(a) => 1 + a.op_count(),
            QoiExpr::Sqrt(a) => 4 + a.op_count(), // sqrt ≈ several FLOPs
            QoiExpr::Ln { arg, .. } => 8 + arg.op_count(),
        }
    }

    /// Pointwise evaluation.
    pub fn eval(&self, vars: &[f64]) -> f64 {
        match self {
            QoiExpr::Var(i) => vars[*i],
            QoiExpr::Const(c) => *c,
            QoiExpr::Add(a, b) => a.eval(vars) + b.eval(vars),
            QoiExpr::Sub(a, b) => a.eval(vars) - b.eval(vars),
            QoiExpr::Mul(a, b) => a.eval(vars) * b.eval(vars),
            QoiExpr::Scale(c, a) => c * a.eval(vars),
            QoiExpr::Square(a) => {
                let v = a.eval(vars);
                v * v
            }
            QoiExpr::Sqrt(a) => a.eval(vars).max(0.0).sqrt(),
            QoiExpr::Abs(a) => a.eval(vars).abs(),
            QoiExpr::Ln { arg, floor } => arg.eval(vars).max(*floor).ln(),
        }
    }

    /// Interval evaluation: the image of the per-variable boxes.
    pub fn eval_interval(&self, vars: &[Interval]) -> Interval {
        match self {
            QoiExpr::Var(i) => vars[*i],
            QoiExpr::Const(c) => Interval::point(*c),
            QoiExpr::Add(a, b) => a.eval_interval(vars).add(b.eval_interval(vars)),
            QoiExpr::Sub(a, b) => a.eval_interval(vars).sub(b.eval_interval(vars)),
            QoiExpr::Mul(a, b) => a.eval_interval(vars).mul(b.eval_interval(vars)),
            QoiExpr::Scale(c, a) => a.eval_interval(vars).scale(*c),
            QoiExpr::Square(a) => a.eval_interval(vars).square(),
            QoiExpr::Sqrt(a) => a.eval_interval(vars).sqrt(),
            QoiExpr::Abs(a) => a.eval_interval(vars).abs(),
            QoiExpr::Ln { arg, floor } => arg.eval_interval(vars).ln_clamped(*floor),
        }
    }

    /// Guaranteed bound on `|Q(v + δ) − Q(v)|` over all `|δ_i| ≤ errs[i]`.
    pub fn error_bound(&self, vars: &[f64], errs: &[f64]) -> f64 {
        debug_assert_eq!(vars.len(), errs.len());
        let boxes: Vec<Interval> = vars
            .iter()
            .zip(errs)
            .map(|(&v, &e)| Interval::ball(v, e))
            .collect();
        let img = self.eval_interval(&boxes);
        img.max_deviation_from(self.eval(vars))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_magnitude_evaluates() {
        let q = QoiExpr::vector_magnitude(3);
        assert_eq!(q.num_vars(), 3);
        let v = q.eval(&[3.0, 4.0, 0.0]);
        assert!((v - 5.0).abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_evaluates() {
        let q = QoiExpr::kinetic_energy(2);
        assert!((q.eval(&[2.0, 4.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn linear_combination_evaluates() {
        let q = QoiExpr::linear(&[2.0, -1.0, 0.5]);
        assert!((q.eval(&[1.0, 2.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_bound_is_sound_for_magnitude() {
        // Deterministic sampling of the perturbation box corners.
        let q = QoiExpr::vector_magnitude(3);
        let v = [1.3, -0.4, 2.2];
        let e = [0.05, 0.02, 0.1];
        let bound = q.error_bound(&v, &e);
        let q0 = q.eval(&v);
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                for sz in [-1.0, 1.0] {
                    let p = [v[0] + sx * e[0], v[1] + sy * e[1], v[2] + sz * e[2]];
                    assert!((q.eval(&p) - q0).abs() <= bound + 1e-12);
                }
            }
        }
    }

    #[test]
    fn error_bound_shrinks_with_errors() {
        let q = QoiExpr::vector_magnitude(3);
        let v = [1.0, 2.0, 3.0];
        let b1 = q.error_bound(&v, &[0.1, 0.1, 0.1]);
        let b2 = q.error_bound(&v, &[0.01, 0.01, 0.01]);
        assert!(b2 < b1);
        let b0 = q.error_bound(&v, &[0.0, 0.0, 0.0]);
        assert_eq!(b0, 0.0);
    }

    #[test]
    fn magnitude_error_bound_near_triangle_inequality() {
        // |‖v+δ‖ − ‖v‖| ≤ ‖δ‖; the interval bound may be looser but should
        // stay within the Manhattan norm of the errors.
        let q = QoiExpr::vector_magnitude(3);
        let v = [10.0, -7.0, 3.0];
        let e = [0.1, 0.2, 0.05];
        let bound = q.error_bound(&v, &e);
        assert!(bound >= (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt() * 0.5);
        assert!(bound <= e.iter().sum::<f64>() + 1e-9);
    }

    #[test]
    fn product_qoi_bound_sound_at_corners() {
        let q = QoiExpr::Mul(Box::new(QoiExpr::Var(0)), Box::new(QoiExpr::Var(1)));
        let v = [3.0, -2.0];
        let e = [0.5, 0.25];
        let bound = q.error_bound(&v, &e);
        let q0 = q.eval(&v);
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                let p = [v[0] + sx * e[0], v[1] + sy * e[1]];
                assert!((q.eval(&p) - q0).abs() <= bound + 1e-12);
            }
        }
    }

    #[test]
    fn op_count_positive_for_composites() {
        assert!(QoiExpr::vector_magnitude(3).op_count() >= 8);
        assert_eq!(QoiExpr::Var(0).op_count(), 0);
    }

    #[test]
    fn log_density_bound_sound_at_corners() {
        let q = QoiExpr::log_density(1e-9);
        for v0 in [0.5f64, 3.0, 100.0] {
            let e = [0.1 * v0];
            let v = [v0];
            let bound = q.error_bound(&v, &e);
            let q0 = q.eval(&v);
            for s in [-1.0, 1.0] {
                let p = [v0 + s * e[0]];
                assert!((q.eval(&p) - q0).abs() <= bound + 1e-12, "v0={v0}");
            }
        }
    }

    #[test]
    fn log_floor_prevents_unbounded_errors() {
        let q = QoiExpr::log_density(1e-6);
        // Error larger than the value: the clamp keeps the bound finite.
        let bound = q.error_bound(&[1e-3], &[1e-2]);
        assert!(bound.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let q = QoiExpr::vector_magnitude(3);
        let s = serde_json::to_string(&q).unwrap();
        let q2: QoiExpr = serde_json::from_str(&s).unwrap();
        assert_eq!(q, q2);
    }
}
