//! Domain-wide QoI error evaluation (the GPU kernels of Algorithm 3).
//!
//! Three kernels, all embarrassingly parallel over grid points:
//!
//! * [`eval_field`] — the QoI values themselves;
//! * [`max_qoi_error`] — the supremum of the pointwise error bounds given
//!   per-variable reconstruction bounds, plus its arg-max (the point the
//!   CP estimator iterates on);
//! * [`actual_max_error`] — ground-truth validation used by Figure 13 to
//!   show `actual ≤ estimated ≤ tolerance`.

use crate::expr::QoiExpr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of a domain-wide max-error scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxError {
    /// Supremum of the pointwise error bounds.
    pub value: f64,
    /// Index of the point attaining it.
    pub argmax: usize,
}

fn gather(vars: &[&[f64]], idx: usize, out: &mut [f64]) {
    for (o, v) in out.iter_mut().zip(vars) {
        *o = v[idx];
    }
}

/// Evaluate `expr` at every grid point of the multi-variable field.
///
/// # Panics
/// Panics if variables have differing lengths or fewer variables than the
/// expression references.
pub fn eval_field(expr: &QoiExpr, vars: &[&[f64]]) -> Vec<f64> {
    validate(expr, vars);
    let n = vars.first().map_or(0, |v| v.len());
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let mut point = [0.0f64; 8];
            gather(vars, i, &mut point[..vars.len()]);
            expr.eval(&point[..vars.len()])
        })
        .collect()
}

/// Supremum over the domain of the pointwise QoI error bound, given the
/// reconstructed variables and one uniform error bound per variable.
pub fn max_qoi_error(expr: &QoiExpr, vars: &[&[f64]], errs: &[f64]) -> MaxError {
    validate(expr, vars);
    assert_eq!(vars.len(), errs.len(), "one error bound per variable");
    let n = vars.first().map_or(0, |v| v.len());
    let best = (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let mut point = [0.0f64; 8];
            gather(vars, i, &mut point[..vars.len()]);
            (expr.error_bound(&point[..vars.len()], errs), i)
        })
        .reduce(|| (0.0f64, 0usize), |a, b| if b.0 > a.0 { b } else { a });
    MaxError {
        value: best.0,
        argmax: best.1,
    }
}

/// Maximum actual QoI error between ground-truth variables and their
/// reconstructions.
pub fn actual_max_error(expr: &QoiExpr, truth: &[&[f64]], approx: &[&[f64]]) -> f64 {
    validate(expr, truth);
    validate(expr, approx);
    assert_eq!(truth.len(), approx.len());
    let n = truth.first().map_or(0, |v| v.len());
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let mut a = [0.0f64; 8];
            let mut b = [0.0f64; 8];
            gather(truth, i, &mut a[..truth.len()]);
            gather(approx, i, &mut b[..approx.len()]);
            (expr.eval(&a[..truth.len()]) - expr.eval(&b[..approx.len()])).abs()
        })
        .reduce(|| 0.0, f64::max)
}

fn validate(expr: &QoiExpr, vars: &[&[f64]]) {
    assert!(
        vars.len() >= expr.num_vars(),
        "expression references {} variables, {} supplied",
        expr.num_vars(),
        vars.len()
    );
    assert!(vars.len() <= 8, "at most 8 variables supported");
    if let Some(first) = vars.first() {
        assert!(
            vars.iter().all(|v| v.len() == first.len()),
            "variable fields must have equal lengths"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn velocity_field(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.013 + phase).sin() * 3.0)
            .collect()
    }

    #[test]
    fn eval_field_matches_pointwise() {
        let q = QoiExpr::vector_magnitude(3);
        let vx = velocity_field(1000, 0.0);
        let vy = velocity_field(1000, 1.0);
        let vz = velocity_field(1000, 2.0);
        let f = eval_field(&q, &[&vx, &vy, &vz]);
        for i in (0..1000).step_by(97) {
            let expect = (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]).sqrt();
            assert!((f[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn max_error_dominates_every_point() {
        let q = QoiExpr::vector_magnitude(3);
        let vx = velocity_field(5000, 0.0);
        let vy = velocity_field(5000, 1.0);
        let vz = velocity_field(5000, 2.0);
        let errs = [0.01, 0.02, 0.005];
        let m = max_qoi_error(&q, &[&vx, &vy, &vz], &errs);
        for i in (0..5000).step_by(313) {
            let b = q.error_bound(&[vx[i], vy[i], vz[i]], &errs);
            assert!(b <= m.value + 1e-15);
        }
        let arg_b = q.error_bound(&[vx[m.argmax], vy[m.argmax], vz[m.argmax]], &errs);
        assert!((arg_b - m.value).abs() < 1e-15);
    }

    #[test]
    fn estimated_bound_covers_actual_error() {
        // Perturb each variable within its bound; the actual QoI error
        // must never exceed the estimate (the Figure 13 invariant).
        let q = QoiExpr::vector_magnitude(3);
        let truth: Vec<Vec<f64>> = (0..3).map(|k| velocity_field(4096, k as f64)).collect();
        let errs = [0.02, 0.01, 0.03];
        let approx: Vec<Vec<f64>> = truth
            .iter()
            .zip(&errs)
            .map(|(t, &e)| {
                t.iter()
                    .enumerate()
                    .map(|(i, &v)| v + e * if i % 2 == 0 { 0.99 } else { -0.99 })
                    .collect()
            })
            .collect();
        let tr: Vec<&[f64]> = truth.iter().map(|v| v.as_slice()).collect();
        let ap: Vec<&[f64]> = approx.iter().map(|v| v.as_slice()).collect();
        let est = max_qoi_error(&q, &ap, &errs).value;
        let act = actual_max_error(&q, &tr, &ap);
        assert!(act <= est, "actual {act} > estimated {est}");
    }

    #[test]
    fn zero_errors_give_zero_estimate() {
        let q = QoiExpr::vector_magnitude(2);
        let vx = velocity_field(100, 0.0);
        let vy = velocity_field(100, 1.0);
        let m = max_qoi_error(&q, &[&vx, &vy], &[0.0, 0.0]);
        assert_eq!(m.value, 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let q = QoiExpr::vector_magnitude(2);
        let a = vec![0.0; 10];
        let b = vec![0.0; 11];
        max_qoi_error(&q, &[&a, &b], &[0.1, 0.1]);
    }

    #[test]
    #[should_panic]
    fn missing_variables_panic() {
        let q = QoiExpr::vector_magnitude(3);
        let a = vec![0.0; 10];
        eval_field(&q, &[&a]);
    }
}
