//! # hpmdr-qoi — Quantities of Interest with guaranteed error bounds
//!
//! Scientists rarely consume raw fields; they derive *Quantities of
//! Interest* (QoIs) such as the total velocity
//! `V_total = √(Vx² + Vy² + Vz²)` used throughout the paper's §7.3
//! evaluation. Progressive retrieval with QoI error control (Algorithm 3)
//! needs, at every iteration, a *guaranteed* upper bound on the pointwise
//! QoI error given the current per-variable reconstruction error bounds.
//!
//! This crate provides:
//!
//! * [`expr::QoiExpr`] — a small expression language covering the base QoI
//!   families of \[39\] (squares, square roots, absolute values, linear
//!   combinations, products);
//! * [`interval`] — sound interval arithmetic used to propagate the
//!   per-variable bounds through an expression;
//! * [`propagate`] — the GPU-kernel-shaped evaluation: pointwise supremum
//!   error estimates, their domain-wide maximum (with arg-max, needed by
//!   the CP estimator), and actual-error measurement for validation
//!   (Figure 13).

pub mod expr;
pub mod interval;
pub mod propagate;

pub use expr::QoiExpr;
pub use interval::Interval;
pub use propagate::{actual_max_error, eval_field, max_qoi_error, MaxError};
