//! Sound interval arithmetic for QoI error propagation.
//!
//! Every operation returns an interval guaranteed to contain the image of
//! its operand intervals; outward rounding is unnecessary here because the
//! bounds feed a *conservative* retrieval loop (a few ULPs of slack are
//! absorbed by the estimate-vs-tolerance comparison, and the validation
//! experiment of Figure 13 confirms estimated ≥ actual).

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower end.
    pub lo: f64,
    /// Upper end.
    pub hi: f64,
}

impl Interval {
    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The ball `[v - r, v + r]` (`r ≥ 0`).
    pub fn ball(v: f64, r: f64) -> Self {
        debug_assert!(r >= 0.0, "negative radius");
        Interval {
            lo: v - r,
            hi: v + r,
        }
    }

    /// Construct from endpoints, normalizing order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// Width `hi - lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval sum.
    #[allow(clippy::should_implement_trait)] // interval algebra, not operator overloading
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    /// Interval difference.
    #[allow(clippy::should_implement_trait)] // interval algebra, not operator overloading
    pub fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
    }

    /// Interval product (max/min of the four endpoint products).
    #[allow(clippy::should_implement_trait)] // interval algebra, not operator overloading
    pub fn mul(self, o: Interval) -> Interval {
        let p = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval {
            lo: p.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: p.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Interval square (tighter than `mul(self)`: the result is ≥ 0).
    pub fn square(self) -> Interval {
        let a = self.lo * self.lo;
        let b = self.hi * self.hi;
        if self.lo <= 0.0 && self.hi >= 0.0 {
            Interval {
                lo: 0.0,
                hi: a.max(b),
            }
        } else {
            Interval::new(a, b)
        }
    }

    /// Interval square root; negative parts are clamped to zero, matching
    /// QoIs defined as `√(non-negative combination)` where small negative
    /// excursions only arise from reconstruction error.
    pub fn sqrt(self) -> Interval {
        Interval {
            lo: self.lo.max(0.0).sqrt(),
            hi: self.hi.max(0.0).sqrt(),
        }
    }

    /// Interval absolute value.
    pub fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            Interval {
                lo: -self.hi,
                hi: -self.lo,
            }
        } else {
            Interval {
                lo: 0.0,
                hi: (-self.lo).max(self.hi),
            }
        }
    }

    /// Scale by a constant.
    pub fn scale(self, c: f64) -> Interval {
        Interval::new(self.lo * c, self.hi * c)
    }

    /// Natural logarithm with the operand clamped to `[floor, ∞)`;
    /// QoIs like `log ρ` are only used on positive fields, and `floor`
    /// keeps reconstruction error excursions from producing `-∞` bounds.
    pub fn ln_clamped(self, floor: f64) -> Interval {
        debug_assert!(floor > 0.0, "log floor must be positive");
        Interval {
            lo: self.lo.max(floor).ln(),
            hi: self.hi.max(floor).ln(),
        }
    }

    /// Reciprocal for intervals that exclude zero; intervals straddling
    /// zero return the conservative unbounded-side result clamped to the
    /// representable range (the retrieval loop treats huge bounds as
    /// "fetch more").
    pub fn recip(self) -> Interval {
        if self.lo > 0.0 || self.hi < 0.0 {
            Interval::new(1.0 / self.hi, 1.0 / self.lo)
        } else {
            Interval {
                lo: -f64::MAX,
                hi: f64::MAX,
            }
        }
    }

    /// Largest deviation of the interval from `v`.
    pub fn max_deviation_from(self, v: f64) -> f64 {
        (self.hi - v).max(v - self.lo).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_and_point() {
        let b = Interval::ball(2.0, 0.5);
        assert_eq!(b, Interval { lo: 1.5, hi: 2.5 });
        assert!(Interval::point(3.0).contains(3.0));
        assert_eq!(Interval::point(3.0).width(), 0.0);
    }

    #[test]
    fn mul_covers_all_sign_combinations() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 1.0);
        let m = a.mul(b);
        for &x in &[-2.0, 0.0, 1.0, 3.0] {
            for &y in &[-5.0, -1.0, 0.0, 1.0] {
                assert!(m.contains(x * y), "{x}*{y}");
            }
        }
    }

    #[test]
    fn square_is_nonnegative_and_tight() {
        let s = Interval::new(-2.0, 3.0).square();
        assert_eq!(s.lo, 0.0);
        assert_eq!(s.hi, 9.0);
        let s2 = Interval::new(2.0, 3.0).square();
        assert_eq!(s2, Interval { lo: 4.0, hi: 9.0 });
        let s3 = Interval::new(-3.0, -2.0).square();
        assert_eq!(s3, Interval { lo: 4.0, hi: 9.0 });
    }

    #[test]
    fn sqrt_clamps_negative() {
        let s = Interval::new(-1.0, 4.0).sqrt();
        assert_eq!(s, Interval { lo: 0.0, hi: 2.0 });
    }

    #[test]
    fn abs_straddles_zero() {
        assert_eq!(
            Interval::new(-3.0, 1.0).abs(),
            Interval { lo: 0.0, hi: 3.0 }
        );
        assert_eq!(
            Interval::new(-3.0, -1.0).abs(),
            Interval { lo: 1.0, hi: 3.0 }
        );
    }

    #[test]
    fn scale_flips_on_negative_constant() {
        assert_eq!(
            Interval::new(1.0, 2.0).scale(-2.0),
            Interval { lo: -4.0, hi: -2.0 }
        );
    }

    #[test]
    fn max_deviation_is_one_sided_safe() {
        let i = Interval::new(0.0, 10.0);
        assert_eq!(i.max_deviation_from(2.0), 8.0);
        assert_eq!(i.max_deviation_from(9.0), 9.0);
    }

    #[test]
    fn ln_clamped_is_monotone_and_floored() {
        let i = Interval::new(0.5, 4.0).ln_clamped(1e-12);
        assert!((i.lo - 0.5f64.ln()).abs() < 1e-12);
        assert!((i.hi - 4.0f64.ln()).abs() < 1e-12);
        let neg = Interval::new(-1.0, 2.0).ln_clamped(1e-3);
        assert!((neg.lo - 1e-3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn recip_flips_and_orders() {
        let i = Interval::new(2.0, 4.0).recip();
        assert!((i.lo - 0.25).abs() < 1e-15);
        assert!((i.hi - 0.5).abs() < 1e-15);
        let n = Interval::new(-4.0, -2.0).recip();
        assert!((n.lo + 0.5).abs() < 1e-15);
        assert!((n.hi + 0.25).abs() < 1e-15);
    }

    #[test]
    fn recip_through_zero_is_conservative() {
        let i = Interval::new(-1.0, 1.0).recip();
        assert_eq!(i.lo, -f64::MAX);
        assert_eq!(i.hi, f64::MAX);
        assert!(i.contains(1e9));
    }
}
