//! Shared socket plumbing: deadline arming and length-prefixed frames.
//!
//! Two independent consumers need the same low-level socket care the
//! HTTP client pioneered — arm read/write timeouts from an absolute
//! deadline before every blocking call, and convert `WouldBlock`/
//! `TimedOut` into a typed timeout once the deadline has genuinely
//! elapsed. This module factors that out ([`arm`], [`map_io`],
//! [`read_exact_deadline`], [`write_all_deadline`]) and layers the
//! progressive-retrieval wire format on top: a length-prefixed frame
//! with a one-byte kind tag, a small JSON header, and an opaque binary
//! payload.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0xA5)
//! 1       1     kind (protocol-defined tag)
//! 2       4     header_len  (u32, little-endian)
//! 6       8     payload_len (u64, little-endian)
//! 14      H     header bytes (JSON, protocol-defined)
//! 14+H    P     payload bytes (opaque binary)
//! ```
//!
//! Both lengths are validated against [`FrameLimits`] *before* any
//! allocation, so a hostile or broken peer declaring a 16 EiB payload
//! costs a 14-byte read, not an OOM.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// First byte of every frame; anything else is a protocol violation.
pub const FRAME_MAGIC: u8 = 0xA5;

/// Fixed-size portion of a frame preceding the variable parts.
pub const FRAME_PREAMBLE_BYTES: usize = 14;

/// Why a wire operation failed.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed: connect, read, or write error.
    Io(std::io::Error),
    /// The deadline elapsed before the operation completed.
    Timeout,
    /// The peer violated the frame format (bad magic, truncated
    /// preamble, short body).
    Malformed(String),
    /// A declared length exceeded the receiver's limit.
    Oversized {
        /// The length the peer declared.
        declared: u64,
        /// The receiver's configured cap.
        limit: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Timeout => write!(f, "deadline elapsed"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Oversized { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Receiver-side caps on the variable-length frame parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Largest accepted header, in bytes.
    pub max_header: usize,
    /// Largest accepted payload, in bytes.
    pub max_payload: usize,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            // Headers are small JSON documents; 64 KiB is generous.
            max_header: 64 * 1024,
            // Payloads carry reconstructed data; 256 MiB covers any
            // dataset this reproduction serves while still bounding a
            // hostile declaration.
            max_payload: 256 * 1024 * 1024,
        }
    }
}

/// One decoded frame: kind tag, header bytes, payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined kind tag.
    pub kind: u8,
    /// Header bytes (JSON by convention; this layer doesn't parse it).
    pub header: Vec<u8>,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a header and no payload.
    pub fn new(kind: u8, header: Vec<u8>) -> Self {
        Frame {
            kind,
            header,
            payload: Vec::new(),
        }
    }

    /// A frame with a header and a payload.
    pub fn with_payload(kind: u8, header: Vec<u8>, payload: Vec<u8>) -> Self {
        Frame {
            kind,
            header,
            payload,
        }
    }
}

/// Arm the socket's read/write timeouts with the time left until
/// `deadline`; an already-elapsed deadline is [`WireError::Timeout`].
pub fn arm(stream: &TcpStream, deadline: Instant) -> Result<(), WireError> {
    let remaining = deadline.checked_duration_since(Instant::now());
    match remaining {
        Some(r) if r > Duration::ZERO => {
            stream.set_read_timeout(Some(r)).map_err(WireError::Io)?;
            stream.set_write_timeout(Some(r)).map_err(WireError::Io)?;
            Ok(())
        }
        _ => Err(WireError::Timeout),
    }
}

/// Map an I/O error, turning timeout kinds into [`WireError::Timeout`]
/// when `deadline` has indeed elapsed. (A `WouldBlock` *before* the
/// deadline means the armed socket timeout raced a clock edge; that
/// stays an I/O error so callers don't mis-blame their budget.)
pub fn map_io(deadline: Instant) -> impl Fn(std::io::Error) -> WireError {
    move |e| {
        let timed_out = matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        );
        if timed_out && Instant::now() >= deadline {
            WireError::Timeout
        } else {
            WireError::Io(e)
        }
    }
}

/// Fill `buf` from `stream`, re-arming the deadline around every read.
/// EOF before `buf` fills is [`WireError::Malformed`] — the peer closed
/// mid-message.
pub fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), WireError> {
    let mut got = 0usize;
    while got < buf.len() {
        arm(stream, deadline)?;
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "connection closed after {got} of {} bytes",
                    buf.len()
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(deadline)(e)),
        }
    }
    Ok(())
}

/// Write all of `buf` to `stream`, re-arming the deadline around every
/// write.
pub fn write_all_deadline(
    stream: &mut TcpStream,
    buf: &[u8],
    deadline: Instant,
) -> Result<(), WireError> {
    let mut sent = 0usize;
    while sent < buf.len() {
        arm(stream, deadline)?;
        match stream.write(&buf[sent..]) {
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                )))
            }
            Ok(n) => sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(deadline)(e)),
        }
    }
    Ok(())
}

/// Write one frame within `deadline`. The preamble and header go out as
/// a single buffer; the payload (potentially large) follows separately
/// so it is never copied.
pub fn write_frame(
    stream: &mut TcpStream,
    frame: &Frame,
    deadline: Instant,
) -> Result<(), WireError> {
    let mut head = Vec::with_capacity(FRAME_PREAMBLE_BYTES + frame.header.len());
    head.push(FRAME_MAGIC);
    head.push(frame.kind);
    let header_len = u32::try_from(frame.header.len())
        .map_err(|_| WireError::Malformed("header exceeds u32".into()))?;
    head.extend_from_slice(&header_len.to_le_bytes());
    head.extend_from_slice(&(frame.payload.len() as u64).to_le_bytes());
    head.extend_from_slice(&frame.header);
    write_all_deadline(stream, &head, deadline)?;
    write_all_deadline(stream, &frame.payload, deadline)
}

/// Read one frame within `deadline`, enforcing `limits` before any
/// allocation. `Ok(None)` means the peer closed the connection cleanly
/// before the first byte — the normal end of a session. EOF anywhere
/// *inside* a frame is [`WireError::Malformed`].
pub fn read_frame(
    stream: &mut TcpStream,
    limits: &FrameLimits,
    deadline: Instant,
) -> Result<Option<Frame>, WireError> {
    // The first byte is read alone so a clean close is distinguishable
    // from a truncated frame.
    let mut first = [0u8; 1];
    loop {
        arm(stream, deadline)?;
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(deadline)(e)),
        }
    }
    if first[0] != FRAME_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad magic byte 0x{:02x}",
            first[0]
        )));
    }
    let mut rest = [0u8; FRAME_PREAMBLE_BYTES - 1];
    read_exact_deadline(stream, &mut rest, deadline)?;
    let kind = rest[0];
    // lint:allow(L3): statically infallible — constant subranges of the
    // fixed [u8; 12] preamble are exactly 4 and 8 bytes.
    let header_len = u32::from_le_bytes(rest[1..5].try_into().unwrap()) as u64;
    // lint:allow(L3): as above.
    let payload_len = u64::from_le_bytes(rest[5..13].try_into().unwrap());
    if header_len > limits.max_header as u64 {
        return Err(WireError::Oversized {
            declared: header_len,
            limit: limits.max_header as u64,
        });
    }
    if payload_len > limits.max_payload as u64 {
        return Err(WireError::Oversized {
            declared: payload_len,
            limit: limits.max_payload as u64,
        });
    }
    let mut header = vec![0u8; header_len as usize];
    read_exact_deadline(stream, &mut header, deadline)?;
    let mut payload = vec![0u8; payload_len as usize];
    read_exact_deadline(stream, &mut payload, deadline)?;
    Ok(Some(Frame {
        kind,
        header,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn frame_round_trips_header_and_payload() {
        let (mut tx, mut rx) = pair();
        let frame = Frame::with_payload(7, b"{\"q\":1}".to_vec(), vec![1, 2, 3, 4, 5]);
        write_frame(&mut tx, &frame, soon()).unwrap();
        let got = read_frame(&mut rx, &FrameLimits::default(), soon())
            .unwrap()
            .unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn empty_header_and_payload_round_trip() {
        let (mut tx, mut rx) = pair();
        write_frame(&mut tx, &Frame::new(0, Vec::new()), soon()).unwrap();
        let got = read_frame(&mut rx, &FrameLimits::default(), soon())
            .unwrap()
            .unwrap();
        assert_eq!(got.kind, 0);
        assert!(got.header.is_empty() && got.payload.is_empty());
    }

    #[test]
    fn clean_close_reads_as_none() {
        let (tx, mut rx) = pair();
        drop(tx);
        assert!(read_frame(&mut rx, &FrameLimits::default(), soon())
            .unwrap()
            .is_none());
    }

    #[test]
    fn bad_magic_is_malformed() {
        let (mut tx, mut rx) = pair();
        tx.write_all(&[0x00u8; 14]).unwrap();
        match read_frame(&mut rx, &FrameLimits::default(), soon()) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_malformed() {
        let (mut tx, mut rx) = pair();
        // A valid preamble declaring an 8-byte header, then close.
        let mut head = vec![FRAME_MAGIC, 1];
        head.extend_from_slice(&8u32.to_le_bytes());
        head.extend_from_slice(&0u64.to_le_bytes());
        tx.write_all(&head).unwrap();
        drop(tx);
        match read_frame(&mut rx, &FrameLimits::default(), soon()) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declarations_fail_before_allocation() {
        let limits = FrameLimits {
            max_header: 16,
            max_payload: 32,
        };
        for (header_len, payload_len) in [(17u32, 0u64), (0, 33), (u32::MAX, u64::MAX)] {
            let (mut tx, mut rx) = pair();
            let mut head = vec![FRAME_MAGIC, 1];
            head.extend_from_slice(&header_len.to_le_bytes());
            head.extend_from_slice(&payload_len.to_le_bytes());
            tx.write_all(&head).unwrap();
            match read_frame(&mut rx, &limits, soon()) {
                Err(WireError::Oversized { .. }) => {}
                other => panic!("expected Oversized, got {other:?}"),
            }
        }
    }

    #[test]
    fn silent_peer_times_out() {
        let (_tx, mut rx) = pair();
        let deadline = Instant::now() + Duration::from_millis(50);
        match read_frame(&mut rx, &FrameLimits::default(), deadline) {
            Err(WireError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_fails_fast() {
        let (_tx, rx) = pair();
        let past = Instant::now() - Duration::from_millis(1);
        match arm(&rx, past) {
            Err(WireError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
