//! The range-GET client: pooled keep-alive connections, per-request
//! deadlines, and bounded retry with exponential backoff + jitter.
//!
//! The client speaks exactly the HTTP/1.1 subset a shard fetch needs —
//! `GET` with an optional single `Range: bytes=a-b` header, responses
//! framed by `Content-Length` — over [`std::net::TcpStream`], so the
//! whole network tier builds offline with no TLS or protocol crates.
//!
//! Failure handling is the point of this module:
//!
//! * **transient** failures (connect/read errors, timeouts, 5xx
//!   statuses, bodies shorter than their declared length) are retried up
//!   to [`RetryPolicy::max_attempts`] times with exponential backoff and
//!   deterministic jitter, on a *fresh* connection;
//! * **permanent** failures (4xx statuses, malformed responses) fail the
//!   request immediately;
//! * when retries run out the last transient error is returned wrapped
//!   in [`HttpError::RetriesExhausted`], so callers can still tell a
//!   dead server from a truncating one.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle keep-alive connections retained per client.
const MAX_POOLED_CONNECTIONS: usize = 8;

/// Hard cap on response header size (a shard server's headers are a few
/// hundred bytes; anything larger is a broken peer, not a big header).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Why an HTTP request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The transport failed: connect, read, or write error.
    Io(std::io::Error),
    /// The per-request deadline elapsed before the response completed.
    Timeout {
        /// The configured deadline.
        deadline: Duration,
    },
    /// The server answered with a non-success status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The requested URL.
        url: String,
    },
    /// The body ended before its declared `Content-Length`.
    ShortBody {
        /// Bytes the response promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The response violated the protocol (unparsable status line,
    /// missing `Content-Length`, bad URL).
    Protocol(String),
    /// Every allowed attempt failed; `last` is the final transient
    /// error.
    RetriesExhausted {
        /// Attempts made (the first try included).
        attempts: u32,
        /// The error the last attempt died with.
        last: Box<HttpError>,
    },
}

impl HttpError {
    /// Whether a fresh attempt could plausibly succeed: transport
    /// errors, timeouts, truncated bodies, and 5xx statuses are
    /// transient; 4xx statuses and protocol violations are not.
    pub fn is_transient(&self) -> bool {
        match self {
            HttpError::Io(_) | HttpError::Timeout { .. } | HttpError::ShortBody { .. } => true,
            HttpError::Status { status, .. } => *status >= 500,
            HttpError::Protocol(_) | HttpError::RetriesExhausted { .. } => false,
        }
    }

    /// The HTTP status this error carries, unwrapping exhausted retries.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Status { status, .. } => Some(*status),
            HttpError::RetriesExhausted { last, .. } => last.status(),
            _ => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::Timeout { deadline } => {
                write!(f, "request deadline of {deadline:?} elapsed")
            }
            HttpError::Status { status, url } => write!(f, "HTTP {status} for {url}"),
            HttpError::ShortBody { expected, got } => {
                write!(f, "body truncated: {got} of {expected} declared bytes")
            }
            HttpError::Protocol(why) => write!(f, "protocol violation: {why}"),
            HttpError::RetriesExhausted { attempts, last } => {
                write!(f, "{attempts} attempts exhausted; last error: {last}")
            }
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            HttpError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

/// Bounded-retry schedule: exponential backoff from
/// [`base_backoff`](Self::base_backoff) doubling per attempt, capped at
/// [`max_backoff`](Self::max_backoff), with ±50% deterministic jitter so
/// a fleet of clients retrying the same stalled server spreads out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff before retry number `retry` (1-based), jittered by
    /// `seed`: `base * 2^(retry-1)` capped at `max`, scaled into
    /// `[50%, 100%]`.
    fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_backoff);
        // 50–100% of the exponential step: full-jitter keeps herds
        // apart without ever sleeping shorter than half the schedule.
        let scale = 0.5 + 0.5 * ((seed % 1024) as f64 / 1023.0);
        exp.mul_f64(scale)
    }
}

/// Client knobs: deadline, retry schedule, pool size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Wall-clock budget per request *attempt* (connect + send +
    /// receive). Elapsing mid-response is [`HttpError::Timeout`].
    pub deadline: Duration,
    /// The bounded-retry schedule.
    pub retry: RetryPolicy,
    /// Largest `Content-Length` accepted before the body buffer is
    /// allocated — the check-before-allocate guard against a hostile or
    /// confused server declaring an absurd body.
    pub max_body: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            max_body: 1 << 30,
        }
    }
}

/// A parsed `http://host:port/path` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    /// `host:port` (port defaulted to 80).
    pub authority: String,
    /// Absolute path, always starting with `/`.
    pub path: String,
}

impl Url {
    /// Parse an `http://` URL. `https` is rejected (no TLS in a
    /// pure-std build); so is anything without a host.
    pub fn parse(url: &str) -> Result<Url, HttpError> {
        let rest = url.strip_prefix("http://").ok_or_else(|| {
            HttpError::Protocol(format!(
                "unsupported URL {url:?}: only http:// is available in this build"
            ))
        })?;
        let (host, path) = match rest.find('/') {
            Some(i) => rest.split_at(i),
            None => (rest, "/"),
        };
        if host.is_empty() {
            return Err(HttpError::Protocol(format!("URL {url:?} has no host")));
        }
        let authority = if host.contains(':') {
            host.to_string()
        } else {
            format!("{host}:80")
        };
        Ok(Url {
            authority,
            path: path.to_string(),
        })
    }
}

/// One successful response: status and body.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status (200 or 206 for the requests this client makes).
    pub status: u16,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// The pooled, retrying range-GET client.
///
/// All methods take `&self`: the connection pool is internally locked
/// and the counters are atomic, so one client serves concurrent
/// fetches — each in-flight request holds its own connection, and
/// completed connections return to the pool for reuse (HTTP/1.1
/// keep-alive).
#[derive(Debug)]
pub struct HttpClient {
    config: ClientConfig,
    /// Idle keep-alive connections, keyed by authority.
    pool: Mutex<Vec<(String, TcpStream)>>,
    /// HTTP requests sent (retries counted individually).
    requests: AtomicUsize,
    /// Retries performed (requests beyond each first attempt).
    retries: AtomicUsize,
    /// Body bytes received across successful responses.
    bytes_received: AtomicUsize,
    /// Jitter state (deterministic xorshift; no RNG dependency).
    jitter: AtomicU64,
}

impl HttpClient {
    /// A client with `config`.
    pub fn new(config: ClientConfig) -> Self {
        HttpClient {
            config,
            pool: Mutex::new(Vec::new()),
            requests: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            bytes_received: AtomicUsize::new(0),
            jitter: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// A client with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ClientConfig::default())
    }

    /// The configuration this client runs under.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// HTTP requests sent so far (each retry counts).
    pub fn requests(&self) -> usize {
        // ORDERING: monotone statistics read; no ordering with other data.
        self.requests.load(Ordering::Relaxed)
    }

    /// Retries performed so far.
    pub fn retries(&self) -> usize {
        // ORDERING: monotone statistics read; no ordering with other data.
        self.retries.load(Ordering::Relaxed)
    }

    /// Body bytes received across successful responses.
    pub fn bytes_received(&self) -> usize {
        // ORDERING: monotone statistics read; no ordering with other data.
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// `GET url` — the whole resource.
    pub fn get(&self, url: &str) -> Result<Vec<u8>, HttpError> {
        self.request(url, None).map(|r| r.body)
    }

    /// `GET url` with `Range: bytes=start-start+len-1` — exactly `len`
    /// bytes from offset `start`. A server answering `200` with the
    /// full resource is accepted and sliced client-side; a `206` must
    /// carry exactly the requested length.
    pub fn get_range(&self, url: &str, start: usize, len: usize) -> Result<Vec<u8>, HttpError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let response = self.request(url, Some((start, len)))?;
        match response.status {
            206 => {
                if response.body.len() != len {
                    return Err(HttpError::Protocol(format!(
                        "range {start}+{len} answered with {} bytes",
                        response.body.len()
                    )));
                }
                Ok(response.body)
            }
            // Range-oblivious server: take the slice ourselves.
            200 => {
                let slice = start
                    .checked_add(len)
                    .and_then(|end| response.body.get(start..end))
                    .ok_or_else(|| {
                        HttpError::Protocol(format!(
                            "range {start}+{len} exceeds the {}-byte resource",
                            response.body.len()
                        ))
                    })?;
                Ok(slice.to_vec())
            }
            status => Err(HttpError::Status {
                status,
                url: url.to_string(),
            }),
        }
    }

    /// The retry loop around [`Self::attempt`].
    fn request(&self, url: &str, range: Option<(usize, usize)>) -> Result<Response, HttpError> {
        let parsed = Url::parse(url)?;
        let max = self.config.retry.max_attempts.max(1);
        let mut last: Option<HttpError> = None;
        for attempt in 1..=max {
            if attempt > 1 {
                // ORDERING: statistics counter, guards nothing.
                self.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.config.retry.backoff(attempt - 1, self.next_jitter()));
            }
            match self.attempt(&parsed, url, range) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(HttpError::RetriesExhausted {
            attempts: max,
            last: Box::new(
                last.unwrap_or_else(|| HttpError::Protocol("retry loop made no attempt".into())),
            ),
        })
    }

    /// One request attempt on one connection (pooled or fresh).
    fn attempt(
        &self,
        parsed: &Url,
        url: &str,
        range: Option<(usize, usize)>,
    ) -> Result<Response, HttpError> {
        let deadline = Instant::now() + self.config.deadline;
        // A pooled connection may have been closed by the server since
        // its last use; that surfaces as a transient I/O error and the
        // retry takes a fresh connection.
        let mut stream = match self.lease(&parsed.authority) {
            Some(stream) => stream,
            None => self.connect(&parsed.authority, deadline)?,
        };
        // ORDERING: statistics counter, guards nothing.
        self.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.roundtrip(&mut stream, parsed, url, range, deadline);
        if let Ok((response, keep_alive)) = &result {
            self.bytes_received
                // ORDERING: statistics counter, guards nothing.
                .fetch_add(response.body.len(), Ordering::Relaxed);
            if *keep_alive {
                self.keep(&parsed.authority, stream);
            }
        }
        result.map(|(response, _)| response)
    }

    /// Send the request and read the full response off `stream`.
    /// Returns the response and whether the connection may be reused.
    fn roundtrip(
        &self,
        stream: &mut TcpStream,
        parsed: &Url,
        url: &str,
        range: Option<(usize, usize)>,
        deadline: Instant,
    ) -> Result<(Response, bool), HttpError> {
        let mut request = format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n",
            parsed.path, parsed.authority
        );
        if let Some((start, len)) = range {
            let end = start
                .checked_add(len)
                .and_then(|e| e.checked_sub(1))
                .ok_or_else(|| HttpError::Protocol(format!("range {start}+{len} overflows")))?;
            request.push_str(&format!("Range: bytes={start}-{end}\r\n"));
        }
        request.push_str("\r\n");

        arm(stream, deadline)?;
        stream
            .write_all(request.as_bytes())
            .map_err(map_io(deadline, self.config.deadline))?;

        // Read headers byte-wise up to the blank line (responses are a
        // few hundred header bytes; body reads below are bulk).
        let mut head = Vec::with_capacity(256);
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            if head.len() > MAX_HEADER_BYTES {
                return Err(HttpError::Protocol("response headers never ended".into()));
            }
            arm(stream, deadline)?;
            match stream.read(&mut byte) {
                Ok(0) => {
                    return Err(HttpError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-headers",
                    )))
                }
                Ok(_) => head.push(byte[0]),
                Err(e) => return Err(map_io(deadline, self.config.deadline)(e)),
            }
        }
        let head = String::from_utf8_lossy(&head);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            }
        }
        let expected = content_length
            .ok_or_else(|| HttpError::Protocol("response carries no Content-Length".into()))?;
        if expected > self.config.max_body {
            return Err(HttpError::Protocol(format!(
                "Content-Length {expected} exceeds the configured max_body ({})",
                self.config.max_body
            )));
        }

        let mut body = vec![0u8; expected];
        let mut got = 0usize;
        while got < expected {
            arm(stream, deadline)?;
            match stream.read(&mut body[got..]) {
                Ok(0) => return Err(HttpError::ShortBody { expected, got }),
                Ok(n) => got += n,
                Err(e) => return Err(map_io(deadline, self.config.deadline)(e)),
            }
        }

        // Error statuses consume their body (keeping the connection in
        // sync) but surface as errors; 5xx is transient, 4xx is not.
        if status != 200 && status != 206 {
            return Err(HttpError::Status {
                status,
                url: url.to_string(),
            });
        }
        Ok((Response { status, body }, keep_alive))
    }

    /// Connect to `authority` within the remaining deadline.
    fn connect(&self, authority: &str, deadline: Instant) -> Result<TcpStream, HttpError> {
        let remaining =
            deadline
                .checked_duration_since(Instant::now())
                .ok_or(HttpError::Timeout {
                    deadline: self.config.deadline,
                })?;
        let addr = authority
            .parse()
            .map_err(|_| HttpError::Protocol(format!("unresolvable authority {authority:?}")))?;
        let stream = TcpStream::connect_timeout(&addr, remaining)
            .map_err(map_io(deadline, self.config.deadline))?;
        stream.set_nodelay(true).map_err(HttpError::Io)?;
        Ok(stream)
    }

    /// Take an idle connection to `authority` from the pool.
    fn lease(&self, authority: &str) -> Option<TcpStream> {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        pool.iter()
            .position(|(a, _)| a == authority)
            .map(|i| pool.swap_remove(i).1)
    }

    /// Return a healthy keep-alive connection to the pool.
    fn keep(&self, authority: &str, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() >= MAX_POOLED_CONNECTIONS {
            pool.remove(0);
        }
        pool.push((authority.to_string(), stream));
    }

    /// Next jitter word (xorshift64*; deterministic, dependency-free).
    fn next_jitter(&self) -> u64 {
        // ORDERING: jitter state is advisory randomness — racing
        // updates only interleave the sequence, never corrupt data.
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // ORDERING: as the load above — advisory randomness only.
        self.jitter.store(x, Ordering::Relaxed);
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Arm the socket's read/write timeouts with the time left until
/// `deadline`; an already-elapsed deadline is [`HttpError::Timeout`].
/// Thin adapter over [`crate::wire::arm`], which owns the logic.
fn arm(stream: &TcpStream, deadline: Instant) -> Result<(), HttpError> {
    crate::wire::arm(stream, deadline).map_err(|e| from_wire(e, Duration::ZERO))
}

/// Map an I/O error, turning timeout kinds into [`HttpError::Timeout`]
/// when the deadline has indeed elapsed. Thin adapter over
/// [`crate::wire::map_io`].
fn map_io(deadline: Instant, configured: Duration) -> impl Fn(std::io::Error) -> HttpError {
    move |e| from_wire(crate::wire::map_io(deadline)(e), configured)
}

/// Lift a transport-level wire error into this client's error type.
fn from_wire(e: crate::wire::WireError, configured: Duration) -> HttpError {
    use crate::wire::WireError;
    match e {
        WireError::Io(e) => HttpError::Io(e),
        WireError::Timeout => HttpError::Timeout {
            deadline: configured,
        },
        WireError::Malformed(why) => HttpError::Protocol(why),
        WireError::Oversized { declared, limit } => {
            HttpError::Protocol(format!("length {declared} exceeds limit {limit}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_covers_ports_paths_and_rejection() {
        let u = Url::parse("http://127.0.0.1:8080/store/manifest.json").unwrap();
        assert_eq!(u.authority, "127.0.0.1:8080");
        assert_eq!(u.path, "/store/manifest.json");
        let u = Url::parse("http://localhost").unwrap();
        assert_eq!(u.authority, "localhost:80");
        assert_eq!(u.path, "/");
        assert!(Url::parse("https://secure.example").is_err());
        assert!(Url::parse("file:///tmp/store").is_err());
        assert!(Url::parse("http://").is_err());
    }

    #[test]
    fn transient_classification_matches_the_retry_contract() {
        assert!(HttpError::Io(std::io::Error::other("boom")).is_transient());
        assert!(HttpError::Timeout {
            deadline: Duration::from_secs(1)
        }
        .is_transient());
        assert!(HttpError::ShortBody {
            expected: 10,
            got: 3
        }
        .is_transient());
        assert!(HttpError::Status {
            status: 503,
            url: "http://x/".into()
        }
        .is_transient());
        assert!(!HttpError::Status {
            status: 404,
            url: "http://x/".into()
        }
        .is_transient());
        assert!(!HttpError::Protocol("bad".into()).is_transient());
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered_within_half() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        };
        for (retry, full) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 100), (9, 100)] {
            for seed in [0u64, 7, 511, 1023] {
                let b = p.backoff(retry, seed).as_millis() as u64;
                assert!(b >= full / 2 && b <= full, "retry {retry} seed {seed}: {b}");
            }
        }
    }
}
