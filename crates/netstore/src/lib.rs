//! Pure-`std` HTTP transport for remote HP-MDR stores.
//!
//! This crate is the network tier's *transport* layer, deliberately
//! below the store abstraction: it knows how to move byte ranges over
//! HTTP/1.1 ([`HttpClient`]) and how to stand up a store directory as
//! an HTTP endpoint for tests and benches ([`LoopbackShardServer`]),
//! but nothing about manifests, chunks, or units. The `RemoteStore`
//! that maps `Store::load_units` onto range requests lives in
//! `hpmdr-core`, which depends on this crate.
//!
//! Everything here builds offline from `std` alone — no TLS, no HTTP
//! framework, no async runtime. The subset of HTTP/1.1 implemented is
//! exactly what shard fetching needs: `GET` with `Range: bytes=a-b`,
//! `Content-Length`-framed responses, and keep-alive connections.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, HttpClient, HttpError, Response, RetryPolicy, Url};
pub use server::{FaultPlan, LoopbackShardServer};
pub use wire::{Frame, FrameLimits, WireError, FRAME_MAGIC};
