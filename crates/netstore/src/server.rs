//! `LoopbackShardServer`: a minimal HTTP/1.1 file server over a store
//! directory, for tests, benches, and examples.
//!
//! The server binds `127.0.0.1:0`, serves `GET` (with `Range:`
//! support) for files directly inside its directory, and keeps
//! connections alive between requests. A [`FaultPlan`] injects the
//! failure modes the client's retry path must survive: 503 responses,
//! dropped connections, truncated bodies, and per-request latency.
//!
//! It exists so the network tier is exercisable in a fully offline
//! build — nothing here is a production server.

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Failure injection for the loopback server, counted down per plan —
/// the first `fail_first + drop_first + truncate_first` requests
/// misbehave (in that order), then the server serves normally. All
/// counters are shared across connections.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Serve this many requests normally before the fault counters
    /// start claiming (e.g. `1` lets a manifest fetch through so the
    /// faults land on shard reads).
    pub spare_first: u32,
    /// Answer this many requests with `503 Service Unavailable`.
    pub fail_first: u32,
    /// Close this many connections without any response.
    pub drop_first: u32,
    /// Answer this many requests with the full `Content-Length` but
    /// only half the body, then close the connection.
    pub truncate_first: u32,
    /// Sleep this long before answering every request (models network
    /// latency; applies to well-served requests too).
    pub latency: Duration,
}

/// What one request should do, decided under the fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Behavior {
    Serve,
    Fail503,
    Drop,
    Truncate,
}

#[derive(Debug)]
struct ServerState {
    dir: PathBuf,
    latency: Duration,
    spare_first: AtomicU32,
    fail_first: AtomicU32,
    drop_first: AtomicU32,
    truncate_first: AtomicU32,
    requests: AtomicUsize,
    bytes_served: AtomicUsize,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Claim the next fault (if any) for an incoming request.
    fn next_behavior(&self) -> Behavior {
        if self
            .spare_first
            // ORDERING: fault budgets are independent counters claimed by
            // CAS; no other memory is published through them.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            return Behavior::Serve;
        }
        for (counter, behavior) in [
            (&self.fail_first, Behavior::Fail503),
            (&self.drop_first, Behavior::Drop),
            (&self.truncate_first, Behavior::Truncate),
        ] {
            if counter
                // ORDERING: same independent-counter argument as above.
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                return behavior;
            }
        }
        Behavior::Serve
    }
}

/// Largest body one request may ask the loopback server to buffer —
/// the check-before-allocate guard on the (wire-derived) range length.
const MAX_SERVE_BYTES: u64 = 1 << 30;

/// A running loopback server; dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop.
#[derive(Debug)]
pub struct LoopbackShardServer {
    state: Arc<ServerState>,
    port: u16,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl LoopbackShardServer {
    /// Serve the files directly inside `dir` with no injected faults.
    pub fn serve(dir: impl Into<PathBuf>) -> std::io::Result<LoopbackShardServer> {
        Self::serve_with_faults(dir, FaultPlan::default())
    }

    /// Serve the files directly inside `dir`, misbehaving per `faults`.
    pub fn serve_with_faults(
        dir: impl Into<PathBuf>,
        faults: FaultPlan,
    ) -> std::io::Result<LoopbackShardServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(ServerState {
            dir: dir.into(),
            latency: faults.latency,
            spare_first: AtomicU32::new(faults.spare_first),
            fail_first: AtomicU32::new(faults.fail_first),
            drop_first: AtomicU32::new(faults.drop_first),
            truncate_first: AtomicU32::new(faults.truncate_first),
            requests: AtomicUsize::new(0),
            bytes_served: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                // ORDERING: shutdown is a latch flag; the accept loop
                // only needs to observe it eventually.
                if accept_state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&accept_state);
                std::thread::spawn(move || serve_connection(stream, conn_state));
            }
        });
        Ok(LoopbackShardServer {
            state,
            port,
            accept_thread: Some(accept_thread),
        })
    }

    /// The server's base URL, e.g. `http://127.0.0.1:41373`.
    pub fn url(&self) -> String {
        format!("http://127.0.0.1:{}", self.port)
    }

    /// Requests received so far (faulted ones included).
    pub fn requests(&self) -> usize {
        // ORDERING: monotone statistics read; no ordering with other data.
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Body bytes actually written to clients.
    pub fn bytes_served(&self) -> usize {
        // ORDERING: monotone statistics read; no ordering with other data.
        self.state.bytes_served.load(Ordering::Relaxed)
    }

    /// Stop accepting connections. In-flight requests finish; idle
    /// keep-alive connections are closed at their next request.
    pub fn shutdown(&mut self) {
        // ORDERING: latch flag; the throwaway connection below forces
        // the accept loop around to observe it, nothing else is ordered.
        if self.state.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LoopbackShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve keep-alive requests on one connection until it closes, a
/// fault drops it, or shutdown is flagged.
fn serve_connection(stream: TcpStream, state: Arc<ServerState>) {
    // An idle keep-alive connection must not pin the thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        // ORDERING: latch flag, observed eventually; no data guarded.
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Some(request) = read_request(&mut reader) else {
            return;
        };
        // ORDERING: statistics counter, guards nothing.
        state.requests.fetch_add(1, Ordering::Relaxed);
        if !state.latency.is_zero() {
            std::thread::sleep(state.latency);
        }
        match state.next_behavior() {
            Behavior::Drop => return,
            Behavior::Fail503 => {
                if respond(&mut stream, 503, "Service Unavailable", b"unavailable").is_err() {
                    return;
                }
            }
            behavior => {
                let truncate = behavior == Behavior::Truncate;
                let served = serve_file(&mut stream, &state, &request, truncate);
                match served {
                    // A truncated body desynchronizes the connection on
                    // purpose; close it like a crashed server would.
                    Ok(_) if truncate => return,
                    Ok(n) => {
                        // ORDERING: statistics counter, guards nothing.
                        state.bytes_served.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(_) => return,
                }
            }
        }
    }
}

/// One parsed request: the GET target and optional byte range.
#[derive(Debug)]
struct Request {
    path: String,
    /// `Range: bytes=a-b` as an inclusive pair.
    range: Option<(u64, u64)>,
}

/// Read one request (start line + headers) off the connection; `None`
/// when the client closed it or sent garbage.
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut start_line = String::new();
    if reader.read_line(&mut start_line).ok()? == 0 {
        return None;
    }
    let mut parts = start_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?.to_string();
    if method != "GET" {
        return None;
    }
    let mut range = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("range") {
                range = parse_range(value.trim());
            }
        }
    }
    Some(Request { path, range })
}

/// Parse `bytes=a-b` (both bounds required — the only form the client
/// sends). Anything else is ignored, falling back to a full-file 200.
fn parse_range(value: &str) -> Option<(u64, u64)> {
    let spec = value.strip_prefix("bytes=")?;
    let (a, b) = spec.split_once('-')?;
    let (a, b) = (a.parse().ok()?, b.parse().ok()?);
    (a <= b).then_some((a, b))
}

/// Serve the requested file (or range of it); returns body bytes sent.
fn serve_file(
    stream: &mut TcpStream,
    state: &ServerState,
    request: &Request,
    truncate: bool,
) -> std::io::Result<usize> {
    // Only plain names directly inside the store directory: a path
    // with separators or `..` is not a shard name.
    let name = request.path.trim_start_matches('/');
    if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
        respond(stream, 404, "Not Found", b"no such file")?;
        return Ok(0);
    }
    let mut file = match std::fs::File::open(state.dir.join(name)) {
        Ok(f) => f,
        Err(_) => {
            respond(stream, 404, "Not Found", b"no such file")?;
            return Ok(0);
        }
    };
    let file_len = file.metadata()?.len();
    let (status, start, len) = match request.range {
        Some((a, b)) if a < file_len => {
            let end = b.min(file_len - 1);
            (206, a, end - a + 1)
        }
        Some(_) => {
            respond(stream, 416, "Range Not Satisfiable", b"range past end")?;
            return Ok(0);
        }
        None => (200, 0, file_len),
    };
    if len > MAX_SERVE_BYTES {
        respond(stream, 413, "Payload Too Large", b"range too large")?;
        return Ok(0);
    }
    file.seek(SeekFrom::Start(start))?;
    let mut body = vec![0u8; len as usize];
    file.read_exact(&mut body)?;

    let mut head = String::new();
    let reason = if status == 206 {
        "Partial Content"
    } else {
        "OK"
    };
    head.push_str(&format!("HTTP/1.1 {status} {reason}\r\n"));
    head.push_str(&format!("Content-Length: {len}\r\n"));
    if status == 206 {
        head.push_str(&format!(
            "Content-Range: bytes {start}-{}/{file_len}\r\n",
            start + len - 1
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    let send = if truncate { body.len() / 2 } else { body.len() };
    // lint:allow(L3): in-bounds by arithmetic — `send` is `body.len()` or
    // half of it.
    stream.write_all(&body[..send])?;
    stream.flush()?;
    Ok(send)
}

/// Write a small fixed response (errors and 503s).
fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &[u8]) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, HttpClient, RetryPolicy};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpmdr-netstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn serves_whole_files_and_ranges_over_keep_alive() {
        let dir = temp_dir("serve");
        let payload: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(dir.join("c0.shard"), &payload).unwrap();

        let server = LoopbackShardServer::serve(&dir).unwrap();
        let client = HttpClient::with_defaults();
        let url = format!("{}/c0.shard", server.url());

        assert_eq!(client.get(&url).unwrap(), payload);
        assert_eq!(client.get_range(&url, 0, 16).unwrap(), &payload[..16]);
        assert_eq!(
            client.get_range(&url, 123, 457).unwrap(),
            &payload[123..580]
        );
        // Three requests on one keep-alive connection.
        assert_eq!(client.requests(), 3);
        assert_eq!(server.requests(), 3);
        assert_eq!(client.retries(), 0);

        let missing = format!("{}/nope.shard", server.url());
        let err = client.get(&missing).unwrap_err();
        assert_eq!(err.status(), Some(404));

        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_are_survived_within_the_retry_budget() {
        let dir = temp_dir("faults");
        let payload = vec![7u8; 4096];
        std::fs::write(dir.join("c0.shard"), &payload).unwrap();

        let server = LoopbackShardServer::serve_with_faults(
            &dir,
            FaultPlan {
                fail_first: 1,
                drop_first: 1,
                truncate_first: 1,
                ..FaultPlan::default()
            },
        )
        .unwrap();
        let client = HttpClient::new(ClientConfig {
            retry: RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
            },
            ..ClientConfig::default()
        });
        let url = format!("{}/c0.shard", server.url());
        // 503, dropped connection, truncated body — then success.
        assert_eq!(client.get_range(&url, 0, 4096).unwrap(), payload);
        assert_eq!(client.retries(), 3);

        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_faults_exhaust_retries_with_a_typed_error() {
        let dir = temp_dir("exhaust");
        std::fs::write(dir.join("c0.shard"), vec![1u8; 64]).unwrap();

        let server = LoopbackShardServer::serve_with_faults(
            &dir,
            FaultPlan {
                fail_first: 100,
                ..FaultPlan::default()
            },
        )
        .unwrap();
        let client = HttpClient::new(ClientConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..ClientConfig::default()
        });
        let url = format!("{}/c0.shard", server.url());
        let err = client.get(&url).unwrap_err();
        match err {
            crate::HttpError::RetriesExhausted { attempts, ref last } => {
                assert_eq!(attempts, 3);
                assert_eq!(last.status(), Some(503));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }

        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
