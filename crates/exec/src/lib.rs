//! # hpmdr-exec — portable executor layer (the HPDR abstraction)
//!
//! HP-MDR's portability claim rests on routing every hot pipeline stage
//! through a backend-agnostic execution layer: the same refactoring /
//! retrieval dataflow runs on CUDA, HIP, or SYCL devices (HPDR,
//! arXiv:2503.06322), or on host CPUs. This crate is that seam for the
//! workspace: a [`Backend`] trait whose kernels cover the hot stages —
//! multilevel decompose/recompose, bitplane encode/decode, and hybrid
//! lossless (de)compression of merged units — plus an [`ExecCtx`]
//! carrying tiling parameters and reusable scratch buffers. A batch
//! entry point ([`Backend::map_batch`]) fans independent work items —
//! notably the chunks of `hpmdr-core`'s chunk grid — across the same
//! worker budget, so domain-decomposed workloads get chunk-level
//! parallelism from the identical kernel set.
//!
//! Two backends ship today:
//!
//! * [`ScalarBackend`] — the portable reference: every kernel runs
//!   sequentially on the calling thread (the paper's "most compatible
//!   processor" configuration). This is the default everywhere, so
//!   behavior is reproducible on any host.
//! * [`ParallelBackend`] — multi-core host execution: level groups,
//!   merged units, and element ranges fan out across a bounded worker
//!   pool (per-tile parallelism comes from the pipeline layer driving one
//!   tile per compute submission).
//! * [`SimdBackend`] — single-threaded execution with the bit-level hot
//!   loops (32×32 transpose, aligned fixed-point conversion, Huffman
//!   histogram and encode) dispatched at construction to AVX2 or NEON
//!   kernels, with a scalar fallback that is always compiled and
//!   reachable (`HPMDR_FORCE_SCALAR=1`).
//!
//! All of them produce **bit-identical artifacts**: parallelism only ever splits
//! independent work (groups, units, elements), never reassociates
//! arithmetic. `tests/tests/backend_equivalence.rs` property-tests that
//! invariant, which is the portability property refactored data relies on.
//!
//! Adding a GPU/SIMD backend means implementing [`Backend`]'s kernels and
//! nothing else; `hpmdr-core`'s refactor/retrieve/pipeline code is generic
//! over `B: Backend`. See `ARCHITECTURE.md` at the workspace root.

mod backend;
mod ctx;
mod parallel;
mod scalar;
mod simd;
pub mod stages;

pub use backend::{Backend, DecodeError, EncodedStream, StreamView};
pub use ctx::{ExecCtx, DEFAULT_TILE_ROWS};
pub use hpmdr_simd::Isa;
pub use parallel::ParallelBackend;
pub use scalar::ScalarBackend;
pub use simd::SimdBackend;
pub use stages::{fan_ordered, CountingGate};
