//! The multi-core host backend: fan-out over level groups and merged
//! units.

use crate::backend::{compress_one_unit, stream_from_chunk, Backend, EncodedStream};
use crate::ctx::ExecCtx;
use hpmdr_bitplane::{BitplaneChunk, BitplaneFloat, Layout};
use hpmdr_lossless::{CompressedGroup, HybridCompressor};
use rayon::prelude::*;
use std::cell::Cell;

thread_local! {
    /// True while this thread executes one item of a [`Backend::map_batch`]
    /// fan-out. Batch items already saturate the worker budget, so nested
    /// kernel `install`s must run inline instead of re-expanding to the
    /// full pool (which would oversubscribe to ~threads² workers).
    static IN_BATCH_ITEM: Cell<bool> = const { Cell::new(false) };
}

/// Set the batch-item marker for the duration of one closure call,
/// restoring it even on unwind.
fn with_batch_item_marker<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_BATCH_ITEM.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(IN_BATCH_ITEM.with(|c| c.replace(true)));
    f()
}

/// Multi-threaded host execution.
///
/// Parallelism shape (mirroring the paper's GPU kernels, which assign
/// independent tiles/planes/units to independent thread blocks):
///
/// * `encode_and_compress` fans out **per level group** — groups are
///   fully independent streams;
/// * `compress_units` fans out **per merged unit** — units compress
///   disjoint plane ranges;
/// * element-parallel leaf kernels (decompose lines, plane transposes,
///   decoder materialization) run under the full worker budget via
///   `install`.
///
/// Work is only ever *split*, never reassociated, so artifacts are
/// bit-identical to [`crate::ScalarBackend`]'s (property-tested in
/// `tests/tests/backend_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct ParallelBackend {
    threads: usize,
    /// Worker pool, built once per backend and shared by clones (the
    /// pipeline clones one handle per tile submission; kernels must not
    /// pay pool construction on the hot path).
    pool: std::sync::Arc<rayon::ThreadPool>,
}

impl Default for ParallelBackend {
    fn default() -> Self {
        ParallelBackend::new()
    }
}

impl ParallelBackend {
    /// Backend using every available core.
    pub fn new() -> Self {
        Self::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Backend bounded to `threads` workers (1 behaves like
    /// [`crate::ScalarBackend`]).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("hpmdr-exec-{i}"))
            .build()
            // lint:allow(L3): the in-tree rayon shim's build is infallible.
            .expect("pool always builds");
        ParallelBackend {
            threads,
            pool: std::sync::Arc::new(pool),
        }
    }
}

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        if IN_BATCH_ITEM.with(Cell::get) {
            // Already inside a batch-item worker: the batch fan-out owns
            // the budget; run nested kernels inline.
            f()
        } else {
            self.pool.install(f)
        }
    }

    fn compress_units(
        &self,
        ctx: &ExecCtx,
        chunk: &BitplaneChunk,
        group_size: usize,
        compressor: &HybridCompressor,
    ) -> Vec<CompressedGroup> {
        let m = group_size.max(1);
        let num_units = chunk.num_planes().div_ceil(m);
        self.install(|| {
            (0..num_units)
                .into_par_iter()
                .map(|u| compress_one_unit(ctx, chunk, u, m, compressor))
                .collect()
        })
    }

    fn map_batch<T, R, F>(&self, _ctx: &ExecCtx, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Send + Sync,
    {
        self.install(|| {
            items
                .par_iter()
                .map(|item| with_batch_item_marker(|| f(item)))
                .collect()
        })
    }

    fn encode_and_compress<F: BitplaneFloat>(
        &self,
        ctx: &ExecCtx,
        groups: &[Vec<F>],
        planes: usize,
        layout: Layout,
        group_size: usize,
        compressor: &HybridCompressor,
    ) -> Vec<EncodedStream> {
        let m = group_size.max(1);
        self.install(|| {
            groups
                .par_iter()
                .map(|g| {
                    let chunk = hpmdr_bitplane::encode(g, planes, layout);
                    let num_units = chunk.num_planes().div_ceil(m);
                    let units: Vec<CompressedGroup> = (0..num_units)
                        .into_par_iter()
                        .map(|u| compress_one_unit(ctx, &chunk, u, m, compressor))
                        .collect();
                    stream_from_chunk(&chunk, m, units)
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarBackend;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.17).sin() * 2.0 + (i as f32 * 0.013).cos())
            .collect()
    }

    #[test]
    fn parallel_matches_scalar_bit_for_bit() {
        let ctx = ExecCtx::default();
        let scalar = ScalarBackend::new();
        let parallel = ParallelBackend::with_threads(4);
        let compressor = HybridCompressor::new(Default::default());
        let groups: Vec<Vec<f32>> = (0..5).map(|g| field(100 + 37 * g)).collect();
        let a =
            scalar.encode_and_compress(&ctx, &groups, 32, Layout::Interleaved32, 4, &compressor);
        let b =
            parallel.encode_and_compress(&ctx, &groups, 32, Layout::Interleaved32, 4, &compressor);
        assert_eq!(a, b);
    }

    #[test]
    fn map_batch_preserves_input_order() {
        let ctx = ExecCtx::default();
        let items: Vec<usize> = (0..57).collect();
        let square = |&i: &usize| i * i;
        let scalar = ScalarBackend::new().map_batch(&ctx, &items, square);
        let parallel = ParallelBackend::with_threads(4).map_batch(&ctx, &items, square);
        assert_eq!(scalar, parallel);
        assert_eq!(scalar[10], 100);
    }

    #[test]
    fn thread_budget_is_clamped() {
        assert_eq!(ParallelBackend::with_threads(0).threads(), 1);
        assert!(ParallelBackend::new().threads() >= 1);
    }

    #[test]
    fn decompose_agrees_with_scalar() {
        use hpmdr_mgard::Hierarchy;
        let ctx = ExecCtx::default();
        let h = Hierarchy::full(&[33, 20]);
        let orig: Vec<f64> = field(33 * 20).into_iter().map(f64::from).collect();
        let mut a = orig.clone();
        let mut b = orig;
        ScalarBackend::new().decompose(&ctx, &mut a, &h, true);
        ParallelBackend::with_threads(4).decompose(&ctx, &mut b, &h, true);
        assert_eq!(a, b, "decompose must be bit-identical across backends");
    }
}
