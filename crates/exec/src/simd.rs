//! Runtime-dispatched SIMD backend.

use crate::backend::{compress_one_unit, Backend};
use crate::ctx::ExecCtx;
use crate::scalar::sequential_pool;
use hpmdr_bitplane::{BitplaneChunk, BitplaneFloat, Layout};
use hpmdr_lossless::{CompressedGroup, HybridCompressor};
use hpmdr_simd::Isa;

/// Single-threaded execution with the bit-level hot loops dispatched to
/// vectorized kernels (AVX2 on x86-64, NEON on aarch64, scalar elsewhere).
///
/// The instruction set is probed **once at construction** and pinned for
/// the backend's lifetime, so every kernel call dispatches through a plain
/// field read — no per-call feature detection. [`SimdBackend::new`]
/// honors the `HPMDR_FORCE_SCALAR` and `HPMDR_SIMD` environment overrides
/// (see [`Isa::detect`]); [`SimdBackend::with_isa`] pins an explicit ISA,
/// degraded to scalar if the host lacks it.
///
/// # Bit identity
///
/// Artifacts are **byte-identical** to [`ScalarBackend`](crate::ScalarBackend)'s
/// for every ISA: the vector kernels restructure *how* bits are computed
/// (transposes, histogram accumulation, accumulator flush widths), never
/// *which* values — arithmetic is never reassociated across elements. The
/// `backend_equivalence` and `golden_bytes` suites in `tests/` enforce
/// this; it is the portability property HP-MDR's refactored data relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdBackend {
    isa: Isa,
}

impl SimdBackend {
    /// Backend using the best ISA the host supports, subject to the
    /// `HPMDR_FORCE_SCALAR` / `HPMDR_SIMD` environment overrides.
    pub fn new() -> Self {
        SimdBackend { isa: Isa::detect() }
    }

    /// Backend pinned to the best ISA the hardware supports, ignoring
    /// environment overrides.
    pub fn best_available() -> Self {
        SimdBackend {
            isa: Isa::best_available(),
        }
    }

    /// Backend pinned to `isa`, degraded to [`Isa::Scalar`] if the host
    /// does not support it (never panics, never emits illegal
    /// instructions).
    pub fn with_isa(isa: Isa) -> Self {
        SimdBackend {
            isa: isa.or_scalar(),
        }
    }

    /// Instruction set every kernel of this backend dispatches to.
    pub fn isa(&self) -> Isa {
        self.isa
    }
}

impl Default for SimdBackend {
    fn default() -> Self {
        SimdBackend::new()
    }
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        match self.isa {
            Isa::Scalar => "simd-scalar",
            Isa::Avx2 => "simd-avx2",
            Isa::Neon => "simd-neon",
        }
    }

    fn threads(&self) -> usize {
        1
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        // Same one-thread budget as the scalar backend: SIMD speeds up
        // the lanes inside a kernel, not the scheduling around it.
        sequential_pool().install(f)
    }

    fn encode_group<F: BitplaneFloat>(
        &self,
        _ctx: &ExecCtx,
        group: &[F],
        planes: usize,
        layout: Layout,
    ) -> BitplaneChunk {
        self.install(|| hpmdr_bitplane::encode_with_isa(group, planes, layout, self.isa))
    }

    fn compress_units(
        &self,
        ctx: &ExecCtx,
        chunk: &BitplaneChunk,
        group_size: usize,
        compressor: &HybridCompressor,
    ) -> Vec<CompressedGroup> {
        let m = group_size.max(1);
        let num_units = chunk.num_planes().div_ceil(m);
        // Route the Huffman histogram/encode kernels through our ISA; the
        // selector's estimates and the emitted bytes are ISA-invariant.
        let compressor = compressor.with_isa(self.isa);
        self.install(|| {
            (0..num_units)
                .map(|u| compress_one_unit(ctx, chunk, u, m, &compressor))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StreamView;
    use crate::ScalarBackend;
    use hpmdr_lossless::HybridConfig;

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.21).sin() * 3.0).collect()
    }

    #[test]
    fn names_reflect_pinned_isa() {
        assert_eq!(SimdBackend::with_isa(Isa::Scalar).name(), "simd-scalar");
        let b = SimdBackend::best_available();
        assert!(b.name().starts_with("simd-"));
        assert!(b.isa().is_available());
        assert_eq!(b.threads(), 1);
    }

    #[test]
    fn unavailable_isa_pins_scalar() {
        if !Isa::Avx2.is_available() {
            assert_eq!(SimdBackend::with_isa(Isa::Avx2).isa(), Isa::Scalar);
        }
        if !Isa::Neon.is_available() {
            assert_eq!(SimdBackend::with_isa(Isa::Neon).isa(), Isa::Scalar);
        }
    }

    #[test]
    fn artifacts_match_scalar_backend_exactly() {
        let ctx = ExecCtx::default();
        let scalar = ScalarBackend::new();
        let compressor = HybridCompressor::new(HybridConfig::default());
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Neon] {
            if !isa.is_available() {
                continue;
            }
            let simd = SimdBackend::with_isa(isa);
            for n in [1usize, 31, 32, 33, 300, 1025] {
                let groups = [field(n)];
                let want = scalar.encode_and_compress(
                    &ctx,
                    &groups,
                    32,
                    Layout::Interleaved32,
                    4,
                    &compressor,
                );
                let got = simd.encode_and_compress(
                    &ctx,
                    &groups,
                    32,
                    Layout::Interleaved32,
                    4,
                    &compressor,
                );
                assert_eq!(got, want, "isa={isa} n={n}");
            }
        }
    }

    #[test]
    fn encode_compress_decode_roundtrip() {
        let ctx = ExecCtx::default();
        let backend = SimdBackend::new();
        let data = field(300);
        let compressor = HybridCompressor::new(HybridConfig::default());
        let streams =
            backend.encode_and_compress(&ctx, &[data], 32, Layout::Interleaved32, 4, &compressor);
        let s = &streams[0];
        let view = StreamView {
            n: s.n,
            exp: s.exp,
            num_planes: s.num_planes,
            layout: s.layout,
            group_size: s.group_size,
            plane_bytes: s.plane_bytes,
            units: &s.units,
        };
        let full = backend
            .decode_units(&ctx, view, s.units.len(), &compressor, "f32")
            .unwrap();
        full.validate().unwrap();
        assert_eq!(full.num_planes(), s.num_planes);
    }
}
