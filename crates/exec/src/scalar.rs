//! The portable single-threaded reference backend.

use crate::backend::Backend;

/// Sequential execution on the calling thread — the "most compatible
/// processor" configuration the paper's portability story falls back to,
/// and the default backend everywhere in the workspace.
///
/// All kernels run inside a one-thread worker budget, so even leaf
/// kernels that know how to parallelize execute sequentially. This is
/// also what makes the backend the semantics reference: no scheduling,
/// no nondeterministic interleaving, one canonical execution order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl ScalarBackend {
    /// Construct the scalar backend.
    pub fn new() -> Self {
        ScalarBackend
    }
}

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn threads(&self) -> usize {
        1
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        sequential_pool().install(f)
    }
}

/// One shared one-thread pool pinning every parallel-capable leaf kernel
/// to sequential execution; built once, not per kernel. Shared by the
/// scalar and SIMD backends — both run kernels in one canonical order.
pub(crate) fn sequential_pool() -> &'static rayon::ThreadPool {
    use std::sync::OnceLock;
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            // lint:allow(L3): the in-tree rayon shim's build is infallible.
            .expect("one-thread pool always builds")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecCtx;
    use hpmdr_bitplane::Layout;
    use hpmdr_lossless::{HybridCompressor, HybridConfig};

    #[test]
    fn scalar_reports_one_thread() {
        let b = ScalarBackend::new();
        assert_eq!(b.threads(), 1);
        assert_eq!(b.name(), "scalar");
        b.install(|| assert_eq!(rayon::current_num_threads(), 1));
    }

    #[test]
    fn encode_compress_decode_roundtrip() {
        let ctx = ExecCtx::default();
        let backend = ScalarBackend::new();
        let data: Vec<f32> = (0..300).map(|i| (i as f32 * 0.21).sin() * 3.0).collect();
        let compressor = HybridCompressor::new(HybridConfig::default());
        let streams =
            backend.encode_and_compress(&ctx, &[data], 32, Layout::Interleaved32, 4, &compressor);
        assert_eq!(streams.len(), 1);
        let s = &streams[0];
        let view = crate::backend::StreamView {
            n: s.n,
            exp: s.exp,
            num_planes: s.num_planes,
            layout: s.layout,
            group_size: s.group_size,
            plane_bytes: s.plane_bytes,
            units: &s.units,
        };
        let full = backend
            .decode_units(&ctx, view, s.units.len(), &compressor, "f32")
            .unwrap();
        full.validate().unwrap();
        assert_eq!(full.num_planes(), s.num_planes);
    }
}
