//! Execution context: tiling parameters and reusable scratch buffers.

use std::sync::Mutex;

/// Default leading-dimension rows per pipeline tile.
pub const DEFAULT_TILE_ROWS: usize = 16;

/// Per-run execution state shared by all kernels of a backend.
///
/// * **Tiling** — how many leading-dimension rows each pipeline tile
///   spans (the staging-buffer granularity of the Figure 4 schedule).
/// * **Buffer reuse** — a bounded pool of byte buffers leased by the
///   merge/compress and decode kernels, so steady-state pipeline tiles
///   stop allocating (the `I1..I3`/`O1..O3` reuse discipline of the
///   paper's device buffers, applied to host scratch).
///
/// The context is `Sync`: parallel backends lease distinct buffers from
/// worker threads concurrently.
#[derive(Debug)]
pub struct ExecCtx {
    tile_rows: usize,
    scratch: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::new(DEFAULT_TILE_ROWS)
    }
}

impl ExecCtx {
    /// Context tiling `tile_rows` leading rows per pipeline tile.
    pub fn new(tile_rows: usize) -> Self {
        ExecCtx {
            tile_rows: tile_rows.max(1),
            scratch: Mutex::new(Vec::new()),
            max_pooled: 32,
        }
    }

    /// Rows per pipeline tile.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Number of scratch buffers currently pooled (for tests/metrics).
    pub fn pooled_buffers(&self) -> usize {
        self.scratch.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Lease a cleared scratch buffer, run `f`, return it to the pool.
    pub fn with_buffer<R>(&self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let mut buf = self
            .scratch
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default();
        buf.clear();
        let out = f(&mut buf);
        let mut pool = self.scratch.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < self.max_pooled {
            pool.push(buf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused() {
        let ctx = ExecCtx::default();
        let ptr1 = ctx.with_buffer(|b| {
            b.extend_from_slice(&[1, 2, 3]);
            b.as_ptr() as usize + b.capacity() // identify the allocation
        });
        let (ptr2, len2) = ctx.with_buffer(|b| (b.as_ptr() as usize + b.capacity(), b.len()));
        assert_eq!(ptr1, ptr2, "second lease reuses the same allocation");
        assert_eq!(len2, 0, "leased buffers arrive cleared");
        assert_eq!(ctx.pooled_buffers(), 1);
    }

    #[test]
    fn tile_rows_clamped_to_one() {
        assert_eq!(ExecCtx::new(0).tile_rows(), 1);
        assert_eq!(ExecCtx::new(64).tile_rows(), 64);
    }
}
