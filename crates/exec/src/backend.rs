//! The [`Backend`] trait: portable kernels for the pipeline's hot stages.

use crate::ctx::ExecCtx;
use hpmdr_bitplane::native::ProgressiveDecoder;
use hpmdr_bitplane::{BitplaneChunk, BitplaneFloat, Layout, Reconstruction};
use hpmdr_lossless::{CodecError, CompressedGroup, HybridCompressor};
use hpmdr_mgard::{Hierarchy, Real};

/// Why [`Backend::decode_units`] failed to rebuild a bitplane chunk.
/// Streams are storage input, so every defect is a matchable error, not
/// a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A merged unit's compressed payload failed entropy decoding.
    Unit {
        /// Index of the failing merged unit within its stream.
        unit: usize,
        /// The underlying codec error.
        source: CodecError,
    },
    /// The stream's declared geometry is inconsistent: its plane byte
    /// size disagrees with the layout, or a unit decompressed to the
    /// wrong length.
    Structure(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Unit { unit, source } => write!(f, "unit {unit}: {source}"),
            DecodeError::Structure(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Unit { source, .. } => Some(source),
            DecodeError::Structure(_) => None,
        }
    }
}

/// One level group encoded to bitplanes and compressed into merged units.
///
/// This is the backend-level product of the encode + lossless stages;
/// `hpmdr-core` wraps it into its serializable `LevelStream`. Unit 0
/// additionally carries the sign plane ahead of its magnitude planes, so
/// unit `u` holds planes `[signs?] u*m .. (u+1)*m`.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedStream {
    /// Element count of the group.
    pub n: usize,
    /// Alignment exponent (`i32::MIN` = all zero).
    pub exp: i32,
    /// Magnitude planes encoded.
    pub num_planes: usize,
    /// Stream layout.
    pub layout: Layout,
    /// Planes per merged unit (`m`).
    pub group_size: usize,
    /// Uncompressed bytes of one plane (layout-padded).
    pub plane_bytes: usize,
    /// Compressed merged units.
    pub units: Vec<CompressedGroup>,
}

/// Borrowed view of an encoded stream, as retrieval sees it (core's
/// `LevelStream` lends its metadata and unit list through this).
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    /// Element count of the group.
    pub n: usize,
    /// Alignment exponent.
    pub exp: i32,
    /// Magnitude planes encoded.
    pub num_planes: usize,
    /// Stream layout.
    pub layout: Layout,
    /// Planes per merged unit.
    pub group_size: usize,
    /// Uncompressed bytes of one plane.
    pub plane_bytes: usize,
    /// Compressed merged units.
    pub units: &'a [CompressedGroup],
}

impl<'a> StreamView<'a> {
    /// Magnitude planes contained in the first `u` units.
    pub fn planes_in_units(&self, u: usize) -> usize {
        (u * self.group_size).min(self.num_planes)
    }
}

/// Portable execution backend: the kernels every pipeline stage routes
/// through. Implementations must be cheap to clone (the overlapped
/// pipeline clones one handle per tile submission) and are expected to
/// produce **bit-identical** outputs for identical inputs — parallelism
/// may split independent work but never reassociate arithmetic.
///
/// The provided method bodies are the portable scalar kernels; a backend
/// customizes execution by overriding [`Backend::install`] (worker
/// budget) and whichever fan-out kernels it can run better.
pub trait Backend: Clone + Default + Send + Sync + 'static {
    /// Short human-readable name (`"scalar"`, `"parallel"`, `"cuda"`, …).
    fn name(&self) -> &'static str;

    /// Worker threads this backend may occupy.
    fn threads(&self) -> usize;

    /// Run `f` under this backend's execution policy (worker budget,
    /// device context, …). Every kernel body runs inside `install`.
    fn install<R>(&self, f: impl FnOnce() -> R) -> R;

    /// Multilevel decomposition (MGARD forward transform), in place.
    fn decompose<F: Real>(&self, _ctx: &ExecCtx, data: &mut [F], h: &Hierarchy, correction: bool) {
        self.install(|| hpmdr_mgard::decompose(data, h, correction));
    }

    /// Recompose the levels above `level`, in place (`level = 0` is the
    /// full inverse transform).
    fn recompose_to_level<F: Real>(
        &self,
        _ctx: &ExecCtx,
        data: &mut [F],
        h: &Hierarchy,
        correction: bool,
        level: usize,
    ) {
        self.install(|| hpmdr_mgard::recompose_to_level(data, h, correction, level));
    }

    /// Bitplane-encode one coefficient group.
    fn encode_group<F: BitplaneFloat>(
        &self,
        _ctx: &ExecCtx,
        group: &[F],
        planes: usize,
        layout: Layout,
    ) -> BitplaneChunk {
        self.install(|| hpmdr_bitplane::encode(group, planes, layout))
    }

    /// Merge an encoded chunk's planes into units of `group_size` and
    /// compress each unit.
    fn compress_units(
        &self,
        ctx: &ExecCtx,
        chunk: &BitplaneChunk,
        group_size: usize,
        compressor: &HybridCompressor,
    ) -> Vec<CompressedGroup> {
        let m = group_size.max(1);
        let num_units = chunk.num_planes().div_ceil(m);
        self.install(|| {
            (0..num_units)
                .map(|u| compress_one_unit(ctx, chunk, u, m, compressor))
                .collect()
        })
    }

    /// Encode and compress every level group of a decomposed variable —
    /// the refactoring hot loop. Parallel backends fan this out per
    /// group; the scalar kernel runs groups in order.
    fn encode_and_compress<F: BitplaneFloat>(
        &self,
        ctx: &ExecCtx,
        groups: &[Vec<F>],
        planes: usize,
        layout: Layout,
        group_size: usize,
        compressor: &HybridCompressor,
    ) -> Vec<EncodedStream> {
        groups
            .iter()
            .map(|g| {
                let chunk = self.encode_group(ctx, g, planes, layout);
                let units = self.compress_units(ctx, &chunk, group_size, compressor);
                stream_from_chunk(&chunk, group_size.max(1), units)
            })
            .collect()
    }

    /// Decompress the first `take_units` merged units of a stream back
    /// into a (possibly partial) [`BitplaneChunk`] — the retrieval-side
    /// inverse of [`Backend::compress_units`].
    ///
    /// Unit payloads decode into a scratch buffer leased from `ctx`
    /// (`Direct` units are read in place, zero copy) and land in the
    /// chunk's plane-major arena as one contiguous word range per unit.
    /// Streams are storage input, so every structural defect is a
    /// readable error, never a panic.
    fn decode_units(
        &self,
        ctx: &ExecCtx,
        stream: StreamView<'_>,
        take_units: usize,
        compressor: &HybridCompressor,
        dtype: &str,
    ) -> Result<BitplaneChunk, DecodeError> {
        let take_units = take_units.min(stream.units.len());
        self.install(|| {
            let k = stream.planes_in_units(take_units);
            let words = stream.layout.words_per_plane(stream.n);
            if stream.plane_bytes != words * 4 {
                return Err(DecodeError::Structure(format!(
                    "stream declares {}-byte planes, layout needs {}",
                    stream.plane_bytes,
                    words * 4
                )));
            }
            let mut signs = vec![0u32; words];
            let mut arena = vec![0u32; k * words];
            ctx.with_buffer(|scratch| -> Result<(), DecodeError> {
                for u in 0..take_units {
                    let raw = compressor
                        .decompress_to(&stream.units[u], scratch)
                        .map_err(|e| DecodeError::Unit { unit: u, source: e })?;
                    let lo = (u * stream.group_size).min(stream.num_planes);
                    let hi = ((u + 1) * stream.group_size).min(stream.num_planes);
                    let expect = (hi - lo + usize::from(u == 0)) * stream.plane_bytes;
                    if raw.len() != expect {
                        return Err(DecodeError::Structure(format!(
                            "unit {u} decompressed to {} bytes, expected {expect}",
                            raw.len()
                        )));
                    }
                    let mut off = 0usize;
                    if u == 0 {
                        read_words(&raw[..stream.plane_bytes], &mut signs);
                        off = stream.plane_bytes;
                    }
                    read_words(&raw[off..], &mut arena[lo * words..hi * words]);
                }
                Ok(())
            })?;
            Ok(BitplaneChunk::from_arena(
                stream.n,
                stream.exp,
                stream.layout,
                dtype.to_string(),
                signs,
                k,
                arena,
            ))
        })
    }

    /// Run `f` over every item of a batch and collect the results in
    /// input order — the chunk-grid fan-out entry point. The items must
    /// be independent: parallel backends may evaluate them concurrently
    /// (each item typically being a whole per-chunk refactor or
    /// reconstruction), while the scalar kernel runs them sequentially.
    /// Because `f` itself routes through backend kernels that never
    /// reassociate arithmetic, batch results are bit-identical across
    /// backends.
    fn map_batch<T, R, F>(&self, _ctx: &ExecCtx, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Send + Sync,
    {
        self.install(|| items.iter().map(&f).collect())
    }

    /// Materialize a progressive decoder's current approximation.
    fn materialize<F: BitplaneFloat>(
        &self,
        _ctx: &ExecCtx,
        decoder: &ProgressiveDecoder,
        chunk: &BitplaneChunk,
        recon: Reconstruction,
    ) -> Vec<F> {
        self.install(|| decoder.materialize::<F>(chunk, recon))
    }
}

/// Assemble the backend-level stream product from an encoded chunk and
/// its compressed units.
pub(crate) fn stream_from_chunk(
    chunk: &BitplaneChunk,
    group_size: usize,
    units: Vec<CompressedGroup>,
) -> EncodedStream {
    EncodedStream {
        n: chunk.n,
        exp: chunk.exp,
        num_planes: chunk.num_planes(),
        layout: chunk.layout,
        group_size,
        plane_bytes: chunk.plane_bytes(),
        units,
    }
}

/// Merge and compress unit `u` of `chunk` (unit 0 carries the signs).
/// The merge buffer is leased from the context pool; the unit's planes
/// are one contiguous arena range, so the merge is a single bulk copy,
/// and a `Direct` selection moves the merged buffer straight into the
/// payload instead of copying it again.
pub(crate) fn compress_one_unit(
    ctx: &ExecCtx,
    chunk: &BitplaneChunk,
    u: usize,
    m: usize,
    compressor: &HybridCompressor,
) -> CompressedGroup {
    let b = chunk.num_planes();
    let plane_bytes = chunk.plane_bytes();
    let lo = (u * m).min(b);
    let hi = ((u + 1) * m).min(b);
    ctx.with_buffer(|merged| {
        merged.reserve((hi - lo + usize::from(u == 0)) * plane_bytes);
        if u == 0 {
            extend_words(merged, &chunk.signs);
        }
        extend_words(merged, chunk.plane_range(lo, hi));
        compressor.compress_owned(merged)
    })
}

/// Append `words` to `out` as little-endian bytes — a bulk resize plus a
/// fixed-stride copy the compiler lowers to a memcpy on LE targets.
pub(crate) fn extend_words(out: &mut Vec<u8>, words: &[u32]) {
    let start = out.len();
    out.resize(start + words.len() * 4, 0);
    for (dst, w) in out[start..].chunks_exact_mut(4).zip(words) {
        dst.copy_from_slice(&w.to_le_bytes());
    }
}

/// Fill `out` from little-endian `bytes` (the inverse bulk copy).
pub(crate) fn read_words(bytes: &[u8], out: &mut [u32]) {
    for (w, src) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        // lint:allow(L3): statically infallible — chunks_exact(4) yields
        // exactly 4 bytes per chunk.
        *w = u32::from_le_bytes(src.try_into().expect("4-byte chunk"));
    }
}
