//! Staged-pipeline scheduling for streaming workloads.
//!
//! The retrieval side of the crate overlaps fetch with decode
//! ([`crate::Backend`] consumers wire that up through channels of their
//! own); this module provides the matching *ingest* schedule: a
//! three-stage `produce → transform → consume` pipeline where the
//! producer and consumer run on dedicated threads and the transform
//! runs on the caller's thread (so it may fan work out through a
//! backend without nesting thread pools).
//!
//! The defining property is the **slot gate**: at most `slots` produced
//! items exist anywhere in the pipeline at once. The producer blocks
//! before reading item k+`slots` until the consumer has fully retired
//! item k, which is what turns "stream a dataset" into "hold a bounded
//! window of it". Callers translate `slots` into a memory bound:
//! peak staged bytes ≤ `slots` × max-item-footprint.
//!
//! Errors from any stage abort the pipeline: the first error wins, the
//! gate is released so no thread deadlocks, and both worker threads are
//! joined before the call returns.

use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// Weighted counting gate bounding how much claimed work is in flight.
///
/// The ingest pipeline claims one unit per staged item ([`acquire`] /
/// [`release`](Self::release) with weight 1, blocking while the gate is
/// full); a server admitting requests against a byte budget claims each
/// request's estimated size with the non-blocking
/// [`try_claim`](Self::try_claim) and *sheds* instead of blocking. Both
/// disciplines share this gate so "bounded in-flight work" has exactly
/// one implementation. [`abort`](Self::abort) wakes every waiter and
/// makes all further `acquire` calls fail, so an erroring stage can
/// never strand a producer on a full gate.
///
/// [`acquire`]: Self::acquire
pub struct CountingGate {
    state: Mutex<GateState>,
    cv: Condvar,
    capacity: usize,
}

struct GateState {
    in_flight: usize,
    aborted: bool,
}

impl CountingGate {
    /// A gate admitting up to `capacity` units in flight (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        CountingGate {
            state: Mutex::new(GateState {
                in_flight: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently claimed (a snapshot; may be stale by the time the
    /// caller acts on it).
    pub fn occupancy(&self) -> usize {
        // lint:allow(L3): lock-poisoning unwrap — a poisoned gate means a
        // worker already panicked; propagating that panic is the contract.
        self.state.lock().unwrap().in_flight
    }

    /// Claim one unit, blocking while the gate is full; returns `false`
    /// if the gate aborted instead.
    pub fn acquire(&self) -> bool {
        // lint:allow(L3): lock-poisoning unwrap, as `occupancy`.
        let mut st = self.state.lock().unwrap();
        while st.in_flight >= self.capacity && !st.aborted {
            // lint:allow(L3): Condvar::wait only errs on poison.
            st = self.cv.wait(st).unwrap();
        }
        if st.aborted {
            return false;
        }
        st.in_flight += 1;
        true
    }

    /// Claim `weight` units **without blocking**: `true` and the claim
    /// is recorded, or `false` when it would overflow the capacity (or
    /// the gate aborted) — the load-shedding primitive. A weight larger
    /// than the whole capacity is only admitted into an *empty* gate,
    /// so one oversized request cannot be starved forever.
    pub fn try_claim(&self, weight: usize) -> bool {
        // lint:allow(L3): lock-poisoning unwrap, as `occupancy`.
        let mut st = self.state.lock().unwrap();
        if st.aborted {
            return false;
        }
        let fits = st.in_flight.checked_add(weight).is_some_and(|total| {
            total <= self.capacity || (st.in_flight == 0 && weight > self.capacity)
        });
        if fits {
            st.in_flight += weight;
        }
        fits
    }

    /// Retire one unit.
    pub fn release(&self) {
        self.release_weight(1);
    }

    /// Retire `weight` units (the pair of a [`try_claim`](Self::try_claim)).
    pub fn release_weight(&self, weight: usize) {
        // lint:allow(L3): lock-poisoning unwrap, as `occupancy`.
        let mut st = self.state.lock().unwrap();
        st.in_flight = st.in_flight.saturating_sub(weight);
        self.cv.notify_all();
    }

    /// Wake every waiter and fail all further claims.
    pub fn abort(&self) {
        // lint:allow(L3): lock-poisoning unwrap, as `occupancy`.
        let mut st = self.state.lock().unwrap();
        st.aborted = true;
        self.cv.notify_all();
    }
}

/// Run a three-stage overlapped pipeline.
///
/// * `produce` is called repeatedly on a dedicated thread; `None` ends
///   the stream. Each `Some` item first claims one of `slots` gate
///   slots, so at most `slots` items are staged pipeline-wide.
/// * `transform` runs on the calling thread. It receives batches of at
///   least one item — up to `max_batch` when the producer has run ahead
///   — and may fan each batch out across worker threads. Outputs are
///   forwarded to the consumer in production order.
/// * `consume` runs on a second dedicated thread; each retired item
///   releases one gate slot.
///
/// The first error from any stage cancels the other stages and is
/// returned; remaining in-flight items are dropped, not consumed.
pub fn run_overlapped<A, B, E, P, T, C>(
    slots: usize,
    max_batch: usize,
    mut produce: P,
    mut transform: T,
    mut consume: C,
) -> Result<(), E>
where
    A: Send,
    B: Send,
    E: Send,
    P: FnMut() -> Option<Result<A, E>> + Send,
    T: FnMut(Vec<A>) -> Result<Vec<B>, E>,
    C: FnMut(B) -> Result<(), E> + Send,
{
    let max_batch = max_batch.max(1);
    let gate = CountingGate::new(slots);
    let gate = &gate;

    // If the transform stage panics, this unwinds before the scope
    // joins its threads; aborting the gate unblocks a producer parked
    // on a full pipeline so the join can complete. On the normal path
    // it fires after both threads have already exited — a no-op.
    struct AbortOnDrop<'a>(&'a CountingGate);
    impl Drop for AbortOnDrop<'_> {
        fn drop(&mut self) {
            self.0.abort();
        }
    }

    std::thread::scope(|scope| {
        let _abort_guard = AbortOnDrop(gate);
        let (tx_a, rx_a) = mpsc::channel::<Result<A, E>>();
        let (tx_b, rx_b) = mpsc::channel::<B>();

        scope.spawn(move || {
            loop {
                if !gate.acquire() {
                    break; // pipeline aborted downstream
                }
                let Some(item) = produce() else {
                    gate.release();
                    break;
                };
                let failed = item.is_err();
                if tx_a.send(item).is_err() {
                    gate.release();
                    break; // transform stage gone
                }
                if failed {
                    break; // stop at the first source error
                }
            }
        });

        let writer = scope.spawn(move || -> Result<(), E> {
            while let Ok(item) = rx_b.recv() {
                if let Err(e) = consume(item) {
                    gate.abort();
                    return Err(e);
                }
                gate.release();
            }
            Ok(())
        });

        // Transform stage on the caller's thread: drain whatever the
        // producer has staged (up to `max_batch`) so a backend fan sees
        // several chunks per dispatch when the producer runs ahead.
        let mut transform_err: Option<E> = None;
        'pump: loop {
            let first = match rx_a.recv() {
                Ok(Ok(a)) => a,
                Ok(Err(e)) => {
                    transform_err = Some(e);
                    break;
                }
                Err(_) => break, // producer finished
            };
            let mut batch = vec![first];
            while batch.len() < max_batch {
                match rx_a.try_recv() {
                    Ok(Ok(a)) => batch.push(a),
                    Ok(Err(e)) => {
                        transform_err = Some(e);
                        break 'pump; // source failed; staged items are moot
                    }
                    Err(_) => break,
                }
            }
            match transform(batch) {
                Ok(outs) => {
                    for out in outs {
                        if tx_b.send(out).is_err() {
                            // Consumer died; its error is authoritative.
                            break 'pump;
                        }
                    }
                }
                Err(e) => {
                    transform_err = Some(e);
                    break;
                }
            }
        }
        if transform_err.is_some() {
            gate.abort(); // unblock a producer waiting on a full gate
        }
        drop(rx_a); // producer's next send fails -> it exits
        drop(tx_b); // consumer drains and exits

        // lint:allow(L3): join fails only if the writer panicked — a bug,
        // not an input condition; re-raising the panic is intended.
        let writer_result = writer.join().expect("ingest writer thread panicked");
        match transform_err {
            Some(e) => Err(e),
            None => writer_result,
        }
    })
}

/// Fan `f` over `items` on up to `max_workers` scoped threads,
/// returning the results in item order; the first error wins.
///
/// This is the I/O-shaped sibling of `Backend::map_batch`: batch fans
/// are sized for compute (one worker per core), while a fan over
/// *latency-bound* work — concurrent byte-range requests against a
/// remote store — wants its own, typically smaller, width that matches
/// the connection budget rather than the core count. Items are claimed
/// from a shared atomic cursor, so an item that stalls (a slow range, a
/// retry cycle) never blocks the others. `max_workers <= 1` (or a
/// single item) runs inline with no threads.
pub fn fan_ordered<T, R, E, F>(items: &[T], max_workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = max_workers.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let failed = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // ORDERING: best-effort early-exit hint; results are
                // published through the mutex slots and the scope join.
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                // ORDERING: the fetch_add's atomicity alone dedups item
                // claims; slot data is ordered by each slot's mutex.
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                if result.is_err() {
                    // ORDERING: hint flag only; the authoritative error is
                    // read from the slots after the scope joins.
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                // lint:allow(L3): lock-poisoning unwrap; slots are
                // private to this scope and only poisoned if `f` panicked.
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        // lint:allow(L3): into_inner errs only on poison (worker panic).
        match slot.into_inner().unwrap() {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Unfilled slot: a worker bailed after a failure elsewhere;
            // that earlier error is found when its slot is reached —
            // unless it comes later in item order, so keep scanning.
            None => {
                continue;
            }
        }
    }
    Ok(out)
}

/// Serial reference schedule: read up to `max_batch` items, transform
/// them as one batch, retire the outputs, repeat. Same stage contract
/// and error semantics as [`run_overlapped`] with zero threads — the
/// compute-then-write baseline, and the path that reproduces the
/// historical whole-input fan when `max_batch` covers the dataset.
pub fn run_serial<A, B, E, P, T, C>(
    max_batch: usize,
    mut produce: P,
    mut transform: T,
    mut consume: C,
) -> Result<(), E>
where
    P: FnMut() -> Option<Result<A, E>>,
    T: FnMut(Vec<A>) -> Result<Vec<B>, E>,
    C: FnMut(B) -> Result<(), E>,
{
    let max_batch = max_batch.max(1);
    let mut done = false;
    while !done {
        let mut batch = Vec::new();
        while batch.len() < max_batch {
            match produce() {
                Some(Ok(a)) => batch.push(a),
                Some(Err(e)) => return Err(e),
                None => {
                    done = true;
                    break;
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        for out in transform(batch)? {
            consume(out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting_producer(n: usize) -> impl FnMut() -> Option<Result<usize, String>> + Send {
        let mut next = 0;
        move || {
            if next == n {
                None
            } else {
                next += 1;
                Some(Ok(next - 1))
            }
        }
    }

    #[test]
    fn try_claim_sheds_at_capacity_and_releases_restore_it() {
        let gate = CountingGate::new(100);
        assert_eq!(gate.capacity(), 100);
        assert!(gate.try_claim(60));
        assert!(gate.try_claim(40));
        assert_eq!(gate.occupancy(), 100);
        assert!(!gate.try_claim(1), "full gate must shed");
        gate.release_weight(40);
        assert_eq!(gate.occupancy(), 60);
        assert!(gate.try_claim(40));
        gate.release_weight(100);
        assert_eq!(gate.occupancy(), 0);
    }

    #[test]
    fn oversized_claim_admits_only_into_an_empty_gate() {
        let gate = CountingGate::new(10);
        assert!(gate.try_claim(25), "empty gate admits an oversized claim");
        assert!(!gate.try_claim(1));
        gate.release_weight(25);
        assert!(gate.try_claim(1));
        assert!(!gate.try_claim(25), "non-empty gate sheds oversized claims");
    }

    #[test]
    fn aborted_gate_refuses_all_claims() {
        let gate = CountingGate::new(4);
        gate.abort();
        assert!(!gate.try_claim(1));
        assert!(!gate.acquire());
    }

    #[test]
    fn overlapped_preserves_order_and_visits_everything() {
        let mut seen = Vec::new();
        run_overlapped(
            3,
            2,
            counting_producer(100),
            |batch: Vec<usize>| Ok(batch.into_iter().map(|x| x * 10).collect()),
            |out| {
                seen.push(out);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, (0..100).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn in_flight_never_exceeds_slots() {
        const SLOTS: usize = 3;
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));

        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let (l, p) = (live.clone(), peak.clone());
        let mut next = 0usize;
        run_overlapped(
            SLOTS,
            1,
            move || {
                if next == 64 {
                    return None;
                }
                next += 1;
                let now = l.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                Some(Ok::<_, String>(Tracked(l.clone())))
            },
            Ok,
            |item| {
                std::thread::yield_now();
                drop(item);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(live.load(Ordering::SeqCst), 0);
        assert!(
            peak.load(Ordering::SeqCst) <= SLOTS,
            "peak in-flight {} exceeded {} slots",
            peak.load(Ordering::SeqCst),
            SLOTS
        );
    }

    #[test]
    fn producer_error_propagates() {
        let mut next = 0;
        let err = run_overlapped(
            2,
            1,
            move || {
                next += 1;
                if next == 5 {
                    Some(Err("source failed".to_string()))
                } else {
                    Some(Ok(next))
                }
            },
            |batch: Vec<i32>| Ok(batch),
            |_| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err, "source failed");
    }

    #[test]
    fn transform_error_propagates() {
        let err = run_overlapped(
            2,
            1,
            counting_producer(1000),
            |batch: Vec<usize>| {
                if batch.contains(&7) {
                    Err("transform failed".to_string())
                } else {
                    Ok(batch)
                }
            },
            |_| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err, "transform failed");
    }

    #[test]
    fn consumer_error_propagates_and_does_not_hang_a_full_gate() {
        let err = run_overlapped(
            2,
            1,
            counting_producer(1000),
            |batch: Vec<usize>| Ok(batch),
            |out| {
                if out == 3 {
                    Err("writer failed".to_string())
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, "writer failed");
    }

    #[test]
    fn serial_matches_overlapped_output() {
        let mut serial = Vec::new();
        run_serial(
            4,
            counting_producer(33),
            |batch: Vec<usize>| Ok::<_, String>(batch.into_iter().map(|x| x + 1).collect()),
            |out| {
                serial.push(out);
                Ok(())
            },
        )
        .unwrap();
        let mut overlapped = Vec::new();
        run_overlapped(
            4,
            4,
            counting_producer(33),
            |batch: Vec<usize>| Ok::<_, String>(batch.into_iter().map(|x| x + 1).collect()),
            |out| {
                overlapped.push(out);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(serial, overlapped);
        assert_eq!(serial.len(), 33);
    }

    #[test]
    fn serial_empty_stream_is_ok() {
        run_serial(8, || None::<Result<usize, String>>, Ok, |_| Ok(())).unwrap();
    }

    #[test]
    fn fan_ordered_preserves_item_order_at_any_width() {
        let items: Vec<usize> = (0..37).collect();
        for workers in [0, 1, 2, 4, 64] {
            let out = fan_ordered(&items, workers, |i, &x| Ok::<_, String>(i * 1000 + x)).unwrap();
            assert_eq!(
                out,
                (0..37).map(|x| x * 1000 + x).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
        let none: Vec<usize> = Vec::new();
        assert_eq!(
            fan_ordered(&none, 4, |_, &x| Ok::<_, String>(x)),
            Ok(vec![])
        );
    }

    #[test]
    fn fan_ordered_returns_the_error_and_stops_fanning() {
        let items: Vec<usize> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let err = fan_ordered(&items, 4, |_, &x| {
            calls.fetch_add(1, Ordering::SeqCst);
            if x == 10 {
                Err(format!("item {x} failed"))
            } else {
                std::thread::yield_now();
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "item 10 failed");
        assert!(
            calls.load(Ordering::SeqCst) < 100,
            "failure did not short-circuit the fan"
        );
    }
}
