//! The 1D multilevel transform: interpolation detail + L2 correction.
//!
//! One decomposition step along a line of `n` active nodes splits it into
//! `ceil(n/2)` coarse nodes (even positions) and `floor(n/2)` detail
//! coefficients (odd positions):
//!
//! 1. **Detail**: `d_i = v_{2i+1} − ½(v_{2i} + v_{2i+2})`, with a one-sided
//!    predictor (`v_{2i}`) when `2i+2` falls off the line (even `n`).
//! 2. **Correction**: the coarse nodes receive the L2 projection of the
//!    detail component, `w = M⁻¹ r`, where `M` is the coarse-grid mass
//!    matrix (tridiagonal, `h`-free after normalization) and
//!    `r_j = ½(d_{j−1} + d_j)` gathers the two adjacent details. This is
//!    what distinguishes MGARD's projection from plain hierarchical
//!    interpolation and gives its L2 stability.
//!
//! Both steps are exactly invertible: the correction depends only on the
//! detail coefficients, so recomposition subtracts the identical `w`.

use crate::Real;

/// Solve the symmetric tridiagonal system `M x = r` in place, where `M`
/// has diagonal `diag` and off-diagonal `off` entries (Thomas algorithm).
///
/// `r` is overwritten with the solution. `scratch` must be at least as
/// long as `r`.
pub fn thomas_solve<F: Real>(diag: &[F], off: F, r: &mut [F], scratch: &mut [F]) {
    let n = r.len();
    if n == 0 {
        return;
    }
    debug_assert_eq!(diag.len(), n);
    debug_assert!(scratch.len() >= n);
    // Forward sweep.
    scratch[0] = off / diag[0];
    r[0] = r[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - off * scratch[i - 1];
        scratch[i] = off / m;
        r[i] = (r[i] - off * r[i - 1]) / m;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        r[i] = r[i] - scratch[i] * r[i + 1];
    }
}

/// Reusable buffers for one line transform (avoids per-line allocation in
/// the hot tensor loops).
#[derive(Debug, Clone, Default)]
pub struct LineScratch<F> {
    coarse: Vec<F>,
    detail: Vec<F>,
    rhs: Vec<F>,
    diag: Vec<F>,
    tmp: Vec<F>,
    /// Coarse-node count the cached Thomas factorization below is for
    /// (0 = none). An axis pass solves thousands of same-length lines
    /// against the *same* mass matrix, so the factorization — the part of
    /// the solve that needs divisions — is computed once per length.
    solver_nc: usize,
    /// Cached `1/m_i` (pivot reciprocals) of the forward sweep.
    inv_m: Vec<F>,
    /// Cached `off/m_i` back-substitution multipliers.
    c: Vec<F>,
}

impl<F: Real> LineScratch<F> {
    /// Scratch able to process lines up to `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let half = n / 2 + 1;
        LineScratch {
            coarse: Vec::with_capacity(half),
            detail: Vec::with_capacity(half),
            rhs: Vec::with_capacity(half),
            diag: Vec::with_capacity(half),
            tmp: Vec::with_capacity(half),
            solver_nc: 0,
            inv_m: Vec::with_capacity(half),
            c: Vec::with_capacity(half),
        }
    }

    /// (Re)build the cached mass-matrix factorization for `nc` coarse
    /// nodes; a hit on the previous length is free.
    fn prepare_solver(&mut self, nc: usize) {
        if self.solver_nc == nc {
            return;
        }
        let one = F::from_f64(1.0);
        let off = F::from_f64(1.0 / 3.0);
        let interior = F::from_f64(4.0 / 3.0);
        let boundary = F::from_f64(2.0 / 3.0);
        self.inv_m.clear();
        self.c.clear();
        let mut prev_c = F::ZERO;
        for i in 0..nc {
            let d = if i == 0 || i + 1 == nc {
                boundary
            } else {
                interior
            };
            let m = if i == 0 { d } else { d - off * prev_c };
            let c = off / m;
            self.inv_m.push(one / m);
            self.c.push(c);
            prev_c = c;
        }
        self.solver_nc = nc;
    }

    /// Solve `M x = r` using the cached factorization — division-free per
    /// line. Recompose-only: multiplying by the cached reciprocals rounds
    /// differently from [`thomas_solve`]'s divisions, which is fine for
    /// reconstruction but would perturb the encoded artifacts if used on
    /// the decompose side.
    fn solve_cached(&mut self, nc: usize) {
        self.prepare_solver(nc);
        let off = F::from_f64(1.0 / 3.0);
        let r = &mut self.rhs;
        r[0] = r[0] * self.inv_m[0];
        for i in 1..nc {
            r[i] = (r[i] - off * r[i - 1]) * self.inv_m[i];
        }
        for i in (0..nc - 1).rev() {
            r[i] = r[i] - self.c[i] * r[i + 1];
        }
    }
}

/// Coarse-grid mass-matrix diagonal for `nc` nodes, normalized by the
/// *fine* spacing `h`: coarse hats have spacing `H = 2h`, so after
/// dividing by `h` the interior diagonal is `2H/3h = 4/3`, the boundary
/// diagonal `H/3h = 2/3`, and the off-diagonal `H/6h = 1/3` (the load
/// vector `r_j = ½(d_{j−1}+d_j)` carries the matching `h/ h` scale).
fn fill_mass_diag<F: Real>(diag: &mut Vec<F>, nc: usize) {
    diag.clear();
    diag.resize(nc, F::from_f64(4.0 / 3.0));
    if nc >= 1 {
        diag[0] = F::from_f64(2.0 / 3.0);
        let last = nc - 1;
        diag[last] = F::from_f64(2.0 / 3.0);
    }
}

/// One decomposition step of `line` (in place): even slots end up holding
/// corrected coarse values, odd slots the detail coefficients.
///
/// Lines shorter than 3 nodes are left untouched (nothing to decompose).
pub fn decompose_line<F: Real>(line: &mut [F], s: &mut LineScratch<F>, correct: bool) {
    let n = line.len();
    if n < 3 {
        return;
    }
    let nc = n.div_ceil(2);
    let nf = n / 2;
    let half = F::from_f64(0.5);

    s.detail.clear();
    for i in 0..nf {
        let left = line[2 * i];
        let pred = if 2 * i + 2 < n {
            (left + line[2 * i + 2]) * half
        } else {
            left
        };
        s.detail.push(line[2 * i + 1] - pred);
    }

    s.coarse.clear();
    for j in 0..nc {
        s.coarse.push(line[2 * j]);
    }

    if correct {
        // r_j = ½ (d_{j-1} + d_j) with missing neighbors treated as zero.
        s.rhs.clear();
        for j in 0..nc {
            let dl = if j >= 1 { s.detail[j - 1] } else { F::ZERO };
            let dr = if j < nf { s.detail[j] } else { F::ZERO };
            s.rhs.push((dl + dr) * half);
        }
        fill_mass_diag(&mut s.diag, nc);
        s.tmp.clear();
        s.tmp.resize(nc, F::ZERO);
        thomas_solve(&s.diag, F::from_f64(1.0 / 3.0), &mut s.rhs, &mut s.tmp);
        for j in 0..nc {
            s.coarse[j] = s.coarse[j] + s.rhs[j];
        }
    }

    for j in 0..nc {
        line[2 * j] = s.coarse[j];
    }
    for i in 0..nf {
        line[2 * i + 1] = s.detail[i];
    }
}

/// Inverse of [`decompose_line`].
pub fn recompose_line<F: Real>(line: &mut [F], s: &mut LineScratch<F>, correct: bool) {
    let n = line.len();
    if n < 3 {
        return;
    }
    let nc = n.div_ceil(2);
    let nf = n / 2;
    let half = F::from_f64(0.5);

    s.detail.clear();
    for i in 0..nf {
        s.detail.push(line[2 * i + 1]);
    }
    s.coarse.clear();
    for j in 0..nc {
        s.coarse.push(line[2 * j]);
    }

    if correct {
        s.rhs.clear();
        for j in 0..nc {
            let dl = if j >= 1 { s.detail[j - 1] } else { F::ZERO };
            let dr = if j < nf { s.detail[j] } else { F::ZERO };
            s.rhs.push((dl + dr) * half);
        }
        s.solve_cached(nc);
        for j in 0..nc {
            s.coarse[j] = s.coarse[j] - s.rhs[j];
        }
    }

    for j in 0..nc {
        line[2 * j] = s.coarse[j];
    }
    for i in 0..nf {
        let left = line[2 * i];
        let pred = if 2 * i + 2 < n {
            (left + line[2 * i + 2]) * half
        } else {
            left
        };
        line[2 * i + 1] = s.detail[i] + pred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_case(vals: &[f64], correct: bool) {
        let mut line = vals.to_vec();
        let mut s = LineScratch::with_capacity(line.len());
        decompose_line(&mut line, &mut s, correct);
        recompose_line(&mut line, &mut s, correct);
        for (a, b) in vals.iter().zip(&line) {
            assert!((a - b).abs() < 1e-12, "{vals:?} -> {line:?}");
        }
    }

    #[test]
    fn thomas_matches_dense_solve() {
        // M = tridiag(1/6, diag, 1/6) with the mass diag for n=4.
        let diag: Vec<f64> = vec![1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0, 1.0 / 3.0];
        let off = 1.0 / 6.0;
        let mut r: Vec<f64> = vec![1.0, 2.0, -1.0, 0.5];
        let rhs = r.clone();
        let mut tmp = vec![0.0f64; 4];
        thomas_solve(&diag, off, &mut r, &mut tmp);
        // Verify M x == rhs.
        for i in 0..4 {
            let mut acc = diag[i] * r[i];
            if i > 0 {
                acc += off * r[i - 1];
            }
            if i < 3 {
                acc += off * r[i + 1];
            }
            assert!((acc - rhs[i]).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn roundtrip_odd_and_even_lengths() {
        for n in [3usize, 4, 5, 8, 9, 16, 17, 100, 101] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin() * 3.0).collect();
            roundtrip_case(&vals, true);
            roundtrip_case(&vals, false);
        }
    }

    #[test]
    fn short_lines_untouched() {
        for n in [0usize, 1, 2] {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let mut line = vals.clone();
            let mut s = LineScratch::with_capacity(2);
            decompose_line(&mut line, &mut s, true);
            assert_eq!(line, vals);
        }
    }

    #[test]
    fn linear_data_has_zero_detail() {
        // Piecewise-linear interpolation reproduces linear data exactly,
        // so all detail coefficients (odd slots) must vanish.
        let vals: Vec<f64> = (0..9).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut line = vals.clone();
        let mut s = LineScratch::with_capacity(9);
        decompose_line(&mut line, &mut s, true);
        for i in 0..4 {
            assert!(
                line[2 * i + 1].abs() < 1e-12,
                "detail {i} = {}",
                line[2 * i + 1]
            );
        }
    }

    #[test]
    fn hat_function_projects_to_half() {
        // The worked example from the design: v = [0, 1, 0] must give
        // detail 1 and corrected coarse values [0.5, 0.5].
        let mut line: Vec<f64> = vec![0.0, 1.0, 0.0];
        let mut s = LineScratch::with_capacity(3);
        decompose_line(&mut line, &mut s, true);
        assert!((line[1] - 1.0).abs() < 1e-12);
        assert!((line[0] - 0.5).abs() < 1e-12);
        assert!((line[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn correction_reduces_l2_error_of_coarse_approximation() {
        // The corrected coarse grid is the L2 projection, so its
        // piecewise-linear interpolant must beat plain subsampling in L2.
        let n = 65;
        let vals: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos())
            .collect();
        let l2_err = |correct: bool| {
            let mut line = vals.clone();
            let mut s = LineScratch::with_capacity(n);
            decompose_line(&mut line, &mut s, correct);
            // Zero the detail, recompose, measure error.
            for i in 0..n / 2 {
                line[2 * i + 1] = 0.0;
            }
            recompose_line(&mut line, &mut s, correct);
            vals.iter()
                .zip(&line)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        assert!(l2_err(true) < l2_err(false));
    }

    #[test]
    fn f32_roundtrip_within_epsilon() {
        let vals: Vec<f32> = (0..33).map(|i| (i as f32 * 0.9).cos() * 7.0).collect();
        let mut line = vals.clone();
        let mut s = LineScratch::with_capacity(33);
        decompose_line(&mut line, &mut s, true);
        recompose_line(&mut line, &mut s, true);
        for (a, b) in vals.iter().zip(&line) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
