//! Level geometry of the multilevel hierarchy.
//!
//! Each dimension's active index set coarsens independently: level 0 is
//! the full grid `0..n`; level *l+1* keeps every other active index
//! (`n_{l+1} = ceil(n_l / 2)`), so the active indices at level *l* along a
//! dimension are the multiples of `2^l` below `n`. Dimensions shorter than
//! 3 stop coarsening. This handles arbitrary (non-dyadic) extents without
//! padding, matching GPU-MGARD's flexible-size handling.

use serde::{Deserialize, Serialize};

/// Maximum supported dimensionality.
pub const MAX_DIMS: usize = 3;

/// Geometry of one decomposition hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Full-grid extents (1–3 entries, all ≥ 1).
    pub shape: Vec<usize>,
    /// Number of decomposition steps (levels of detail).
    pub levels: usize,
}

impl Hierarchy {
    /// Build a hierarchy over `shape` with the maximum number of useful
    /// levels (every dimension coarsened until shorter than 3).
    ///
    /// # Panics
    /// Panics on empty shapes, more than [`MAX_DIMS`] dimensions, or any
    /// zero extent.
    pub fn full(shape: &[usize]) -> Self {
        Self::with_levels(shape, usize::MAX)
    }

    /// Build a hierarchy with at most `max_levels` decomposition steps.
    pub fn with_levels(shape: &[usize], max_levels: usize) -> Self {
        assert!(
            !shape.is_empty() && shape.len() <= MAX_DIMS,
            "1-3 dimensions supported"
        );
        assert!(shape.iter().all(|&n| n >= 1), "zero-sized dimension");
        let mut levels = 0usize;
        let mut dims: Vec<usize> = shape.to_vec();
        while levels < max_levels && dims.iter().any(|&n| n >= 3) {
            for n in dims.iter_mut() {
                if *n >= 3 {
                    *n = n.div_ceil(2);
                }
            }
            levels += 1;
        }
        Hierarchy {
            shape: shape.to_vec(),
            levels,
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.shape.len()
    }

    /// Total element count of the full grid.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the grid is empty (never true for valid hierarchies).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `d` at level `l` (level 0 = full grid).
    pub fn dim_at_level(&self, d: usize, l: usize) -> usize {
        let mut n = self.shape[d];
        for _ in 0..l {
            if n >= 3 {
                n = n.div_ceil(2);
            }
        }
        n
    }

    /// Shape of the active grid at level `l`.
    pub fn shape_at_level(&self, l: usize) -> Vec<usize> {
        (0..self.ndims()).map(|d| self.dim_at_level(d, l)).collect()
    }

    /// Stride (in original index units) between active nodes of dimension
    /// `d` at level `l`.
    pub fn stride_at_level(&self, d: usize, l: usize) -> usize {
        let mut n = self.shape[d];
        let mut stride = 1usize;
        for _ in 0..l {
            if n >= 3 {
                n = n.div_ceil(2);
                stride *= 2;
            }
        }
        stride
    }

    /// Number of active nodes at level `l`.
    pub fn len_at_level(&self, l: usize) -> usize {
        self.shape_at_level(l).iter().product()
    }

    /// Row-major strides of the full grid.
    pub fn strides(&self) -> Vec<usize> {
        let nd = self.ndims();
        let mut s = vec![1usize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.shape[d + 1];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_plus_one_coarsens_cleanly() {
        let h = Hierarchy::full(&[17]);
        assert_eq!(h.levels, 4); // 17 -> 9 -> 5 -> 3 -> 2
        assert_eq!(h.dim_at_level(0, 1), 9);
        assert_eq!(h.dim_at_level(0, 2), 5);
        assert_eq!(h.dim_at_level(0, 3), 3);
        assert_eq!(h.dim_at_level(0, 4), 2);
    }

    #[test]
    fn non_dyadic_sizes_supported() {
        let h = Hierarchy::full(&[100]);
        // 100 -> 50 -> 25 -> 13 -> 7 -> 4 -> 2
        assert_eq!(h.levels, 6);
        assert_eq!(h.dim_at_level(0, 6), 2);
    }

    #[test]
    fn small_dims_stop_coarsening() {
        let h = Hierarchy::full(&[2, 33]);
        assert_eq!(h.dim_at_level(0, h.levels), 2);
        assert_eq!(h.dim_at_level(1, h.levels), 2); // 33->17->9->5->3->2
        assert_eq!(h.levels, 5);
    }

    #[test]
    fn strides_grow_only_while_coarsening() {
        let h = Hierarchy::full(&[5, 64]);
        // dim 0: 5 -> 3 -> stop; stride caps at 2... 5->3 (stride 2), then 3>=3: ->2 (stride 4).
        assert_eq!(h.stride_at_level(0, 1), 2);
        assert_eq!(h.stride_at_level(0, 2), 4);
        assert_eq!(h.stride_at_level(0, 3), 4); // dim now 2, frozen
        assert_eq!(h.stride_at_level(1, 3), 8);
    }

    #[test]
    fn level_shape_products() {
        let h = Hierarchy::with_levels(&[9, 9, 9], 2);
        assert_eq!(h.levels, 2);
        assert_eq!(h.shape_at_level(0), vec![9, 9, 9]);
        assert_eq!(h.shape_at_level(1), vec![5, 5, 5]);
        assert_eq!(h.shape_at_level(2), vec![3, 3, 3]);
        assert_eq!(h.len_at_level(2), 27);
    }

    #[test]
    fn max_levels_cap_respected() {
        let h = Hierarchy::with_levels(&[1025], 4);
        assert_eq!(h.levels, 4);
        assert_eq!(h.dim_at_level(0, 4), 65);
    }

    #[test]
    fn row_major_strides() {
        let h = Hierarchy::full(&[4, 5, 6]);
        assert_eq!(h.strides(), vec![30, 6, 1]);
    }

    #[test]
    #[should_panic]
    fn four_dims_rejected() {
        Hierarchy::full(&[2, 2, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn zero_extent_rejected() {
        Hierarchy::full(&[4, 0]);
    }

    #[test]
    fn size_one_dimension_is_inert() {
        let h = Hierarchy::full(&[1, 9]);
        assert_eq!(h.dim_at_level(0, h.levels), 1);
        assert!(h.levels > 0);
    }
}
