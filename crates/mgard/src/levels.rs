//! Per-level coefficient extraction and error propagation.
//!
//! After [`crate::transform::decompose`], coefficients stay interleaved at
//! their original grid positions. MDR encodes each *level group*
//! independently, so this module enumerates the groups:
//!
//! * group 0 — nodal values of the coarsest grid;
//! * group `k` (1..=levels) — the detail coefficients introduced when
//!   refining from level `levels-k+1` to `levels-k`.
//!
//! [`level_error_weights`] provides the conservative L∞ propagation
//! factors the retrieval planner uses to split a target error across
//! groups: the correction solve amplifies detail errors by at most
//! `‖M⁻¹‖∞ ≤ 3`, so a unit detail error grows to at most 4 after one
//! recomposition step and does not grow further on later steps.

use crate::grid::Hierarchy;
use crate::Real;
use serde::{Deserialize, Serialize};

/// Flat element indices of each level group, in deterministic row-major
/// order (the order `extract`/`inject` use).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSet {
    /// `indices[k]` holds the flat positions of group `k`.
    pub indices: Vec<Vec<usize>>,
}

impl LevelSet {
    /// Enumerate the level groups of `h`.
    ///
    /// One incremental row-major walk per group: the flat index is
    /// maintained by stride additions and next-level membership by
    /// parity/shift checks, so no element pays a division. The emitted
    /// order is identical to the historical per-element decode.
    pub fn new(h: &Hierarchy) -> Self {
        let nd = h.ndims();
        let row_major = h.strides();
        let mut indices = Vec::with_capacity(h.levels + 1);

        // Group 0: the coarsest active grid.
        indices.push(enumerate_active(h, h.levels, &row_major));

        // Group k: active(l) \ active(l+1) for l = levels-k. A level-l
        // node with level-local coordinate j sits in level l+1 iff its
        // dimension refined (stride doubled) and j is an even coordinate
        // still on the next grid — a parity test, never a division.
        for k in 1..=h.levels {
            let l = h.levels - k;
            let dims = h.shape_at_level(l);
            let dims_next = h.shape_at_level(l + 1);
            let doubled: Vec<bool> = (0..nd)
                .map(|d| h.stride_at_level(d, l + 1) != h.stride_at_level(d, l))
                .collect();
            let elem_stride: Vec<usize> = (0..nd)
                .map(|d| h.stride_at_level(d, l) * row_major[d])
                .collect();
            let count: usize = dims.iter().product();
            let mut kept = Vec::new();
            let mut coord = vec![0usize; nd];
            let mut flat = 0usize;
            for _ in 0..count {
                let in_next = (0..nd).all(|d| {
                    // A frozen dimension (< 3 nodes) keeps all its nodes.
                    !doubled[d] || (coord[d] & 1 == 0 && (coord[d] >> 1) < dims_next[d])
                });
                if !in_next {
                    kept.push(flat);
                }
                for d in (0..nd).rev() {
                    coord[d] += 1;
                    flat += elem_stride[d];
                    if coord[d] < dims[d] {
                        break;
                    }
                    flat -= coord[d] * elem_stride[d];
                    coord[d] = 0;
                }
            }
            indices.push(kept);
        }
        LevelSet { indices }
    }

    /// Number of groups (`levels + 1`).
    pub fn num_groups(&self) -> usize {
        self.indices.len()
    }

    /// Total element count across groups (must equal the grid size).
    pub fn total_len(&self) -> usize {
        self.indices.iter().map(Vec::len).sum()
    }
}

fn enumerate_active(h: &Hierarchy, l: usize, row_major: &[usize]) -> Vec<usize> {
    let nd = h.ndims();
    let dims = h.shape_at_level(l);
    let elem_stride: Vec<usize> = (0..nd)
        .map(|d| h.stride_at_level(d, l) * row_major[d])
        .collect();
    let count: usize = dims.iter().product();
    let mut out = Vec::with_capacity(count);
    let mut coord = vec![0usize; nd];
    let mut flat = 0usize;
    for _ in 0..count {
        out.push(flat);
        // Row-major increment, flat index maintained by stride steps.
        for d in (0..nd).rev() {
            coord[d] += 1;
            flat += elem_stride[d];
            if coord[d] < dims[d] {
                break;
            }
            flat -= coord[d] * elem_stride[d];
            coord[d] = 0;
        }
    }
    out
}

/// Pull the per-level coefficient groups out of a decomposed array.
pub fn extract_levels<F: Real>(data: &[F], h: &Hierarchy) -> Vec<Vec<F>> {
    extract_levels_with(&LevelSet::new(h), data)
}

/// [`extract_levels`] against a pre-enumerated [`LevelSet`] — callers
/// that process one hierarchy repeatedly build the set once instead of
/// re-deriving every group index per call.
pub fn extract_levels_with<F: Real>(ls: &LevelSet, data: &[F]) -> Vec<Vec<F>> {
    ls.indices
        .iter()
        .map(|idx| idx.iter().map(|&i| data[i]).collect())
        .collect()
}

/// Inverse of [`extract_levels`]: scatter groups back into a full array.
///
/// # Panics
/// Panics if group shapes do not match the hierarchy.
pub fn inject_levels<F: Real>(groups: &[Vec<F>], h: &Hierarchy) -> Vec<F> {
    inject_levels_with(&LevelSet::new(h), groups, h)
}

/// [`inject_levels`] against a pre-enumerated [`LevelSet`].
///
/// # Panics
/// Panics if group shapes do not match the level set.
pub fn inject_levels_with<F: Real>(ls: &LevelSet, groups: &[Vec<F>], h: &Hierarchy) -> Vec<F> {
    assert_eq!(groups.len(), ls.num_groups(), "group count mismatch");
    let mut out = vec![F::ZERO; h.len()];
    for (g, idx) in groups.iter().zip(&ls.indices) {
        assert_eq!(g.len(), idx.len(), "group length mismatch");
        for (&v, &i) in g.iter().zip(idx) {
            out[i] = v;
        }
    }
    out
}

/// Conservative L∞ error propagation weight of each level group: a
/// pointwise error `e_k` on group `k`'s coefficients perturbs the final
/// reconstruction by at most `weight[k] · e_k`.
pub fn level_error_weights(h: &Hierarchy, correction: bool) -> Vec<f64> {
    let kappa = if correction { 3.0 } else { 0.0 };
    let mut w = Vec::with_capacity(h.levels + 1);
    w.push(1.0); // nodal values propagate through interpolation unamplified
    for _ in 1..=h.levels {
        w.push(1.0 + kappa);
    }
    w
}

/// Total reconstruction error bound given per-group pointwise bounds.
pub fn reconstruction_error_bound(h: &Hierarchy, correction: bool, group_errors: &[f64]) -> f64 {
    let w = level_error_weights(h, correction);
    assert_eq!(group_errors.len(), w.len(), "one error per group required");
    w.iter().zip(group_errors).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{decompose, recompose};

    #[test]
    fn groups_partition_the_grid() {
        for shape in [vec![17usize], vec![9, 12], vec![5, 7, 9]] {
            let h = Hierarchy::full(&shape);
            let ls = LevelSet::new(&h);
            assert_eq!(ls.total_len(), h.len(), "{shape:?}");
            let mut seen = vec![false; h.len()];
            for idx in &ls.indices {
                for &i in idx {
                    assert!(!seen[i], "duplicate index {i} in {shape:?}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn group_zero_is_coarsest_grid() {
        let h = Hierarchy::full(&[17, 17]);
        let ls = LevelSet::new(&h);
        assert_eq!(ls.indices[0].len(), h.len_at_level(h.levels));
    }

    #[test]
    fn finest_group_is_largest() {
        let h = Hierarchy::full(&[65, 65]);
        let ls = LevelSet::new(&h);
        let finest = ls.indices.last().expect("non-empty");
        // Refining 33x33 -> 65x65 adds 65*65 - 33*33 coefficients.
        assert_eq!(finest.len(), 65 * 65 - 33 * 33);
    }

    #[test]
    fn extract_inject_roundtrip() {
        let h = Hierarchy::full(&[9, 8, 7]);
        let data: Vec<f64> = (0..h.len()).map(|i| i as f64 * 0.31).collect();
        let groups = extract_levels(&data, &h);
        let back = inject_levels(&groups, &h);
        assert_eq!(data, back);
    }

    #[test]
    fn full_pipeline_decompose_extract_inject_recompose() {
        let h = Hierarchy::full(&[33, 21]);
        let orig: Vec<f64> = (0..h.len())
            .map(|i| ((i % 33) as f64 * 0.2).sin() + ((i / 33) as f64 * 0.15).cos())
            .collect();
        let mut data = orig.clone();
        decompose(&mut data, &h, true);
        let groups = extract_levels(&data, &h);
        let mut rebuilt = inject_levels(&groups, &h);
        recompose(&mut rebuilt, &h, true);
        for (a, b) in orig.iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn error_bound_holds_under_coefficient_perturbation() {
        // Perturb every group coefficient by ±e_k; reconstruction error
        // must stay below the advertised bound.
        let h = Hierarchy::full(&[33, 33]);
        let orig: Vec<f64> = (0..h.len())
            .map(|i| ((i % 33) as f64 * 0.7).sin() * 2.0 + ((i / 33) as f64 * 0.9).cos())
            .collect();
        let mut data = orig.clone();
        decompose(&mut data, &h, true);
        let mut groups = extract_levels(&data, &h);
        let errs: Vec<f64> = (0..groups.len()).map(|k| 1e-3 / (k + 1) as f64).collect();
        // Adversarial-ish deterministic perturbation.
        for (k, g) in groups.iter_mut().enumerate() {
            for (j, v) in g.iter_mut().enumerate() {
                let sign = if (j * 2654435761usize) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                };
                *v += sign * errs[k];
            }
        }
        let mut rebuilt = inject_levels(&groups, &h);
        recompose(&mut rebuilt, &h, true);
        let bound = reconstruction_error_bound(&h, true, &errs);
        let max_err = orig
            .iter()
            .zip(&rebuilt)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= bound, "max_err {max_err} vs bound {bound}");
    }

    #[test]
    fn weights_shrink_without_correction() {
        let h = Hierarchy::full(&[17]);
        let with = level_error_weights(&h, true);
        let without = level_error_weights(&h, false);
        assert!(with[1] > without[1]);
        assert_eq!(with[0], 1.0);
        assert_eq!(without[1], 1.0);
    }

    #[test]
    #[should_panic]
    fn inject_wrong_group_count_panics() {
        let h = Hierarchy::full(&[9]);
        inject_levels(&[vec![0.0f64; 3]], &h);
    }
}
