//! Runtime-dispatched SIMD kernels for [`quantize`](crate::quantize).
//!
//! The MGARD baseline codec spends most of its coefficient-processing time
//! in three embarrassingly parallel loops: fixed-point quantization
//! (`(v * inv).round() as i64`), dequantization (`qi as f64 * 2.0 * eb`),
//! and the zig-zag map feeding the varint byte stream. This module provides
//! AVX2 and NEON implementations of all three behind the same [`Isa`]
//! dispatch used by the bitplane and Huffman kernels.
//!
//! # Bit identity
//!
//! Every kernel reproduces the scalar reference *exactly*, element by
//! element:
//!
//! * **Rounding.** Rust's `f64::round` rounds half away from zero. NEON has
//!   that mode in hardware (`FRINTA`); AVX2 only rounds half to even, so
//!   the x86 kernels round ties-even and then add `copysign(1, s)` to the
//!   lanes where `s - r == copysign(0.5, s)` — precisely the ties the two
//!   modes disagree on. The subtraction `s - r` is exact (Sterbenz lemma)
//!   for every value the conversion below accepts, so the fix-up is exact.
//! * **Conversion.** `as i64` saturates and maps NaN to zero. NEON's
//!   `FCVTZS` has identical semantics. AVX2 has no packed `f64 -> i64`
//!   conversion, so the kernels use the magic-constant trick
//!   (`(r + 1.5·2^52) reinterpreted - magic`), which is exact for
//!   `|r| ≤ 2^51`; lanes outside that range (or NaN) take a per-block
//!   scalar fallback that replicates the Rust cast verbatim.
//! * **Dequantization.** The products are evaluated in the scalar
//!   reference's association order `(qi as f64 * 2.0) * eb`. The
//!   `i64 -> f64` conversion is exact on NEON (`SCVTF`); on AVX2 the
//!   inverse magic trick is used with the same `|qi| ≤ 2^51` guard.
//!
//! # Safety model
//!
//! All `unsafe` lives in `#[target_feature]` leaf functions with a single
//! precondition: the named feature is available on the running CPU. Safe
//! entry points establish it by dispatching on [`Isa::is_available`]
//! (via [`Isa::or_scalar`]) before any kernel is selected.

use crate::Real;
use std::any::TypeId;

pub use hpmdr_simd::Isa;

/// [`quantize`](crate::quantize::quantize) with the hot loop dispatched to
/// `isa`'s vectorized kernel (degraded to scalar if unavailable). Output is
/// bit-identical to the scalar reference for every ISA and input, including
/// non-finite values and magnitudes that saturate `i64`.
///
/// # Panics
/// Panics if `eb` is not positive.
pub fn quantize_with_isa<F: Real>(values: &[F], eb: f64, isa: Isa) -> Vec<i64> {
    assert!(eb > 0.0, "error bound must be positive");
    let inv = 1.0 / (2.0 * eb);
    let mut out = vec![0i64; values.len()];
    if !quantize_into::<F, false>(values, inv, isa.or_scalar(), &mut out) {
        for (o, v) in out.iter_mut().zip(values) {
            *o = (v.to_f64() * inv).round() as i64;
        }
    }
    out
}

/// Fused quantize + zig-zag: returns `((c << 1) ^ (c >> 63)) as u64` for
/// each quantization code `c`, with the zig-zag map applied in-register so
/// the codes never round-trip through memory. Feeding the result through a
/// varint writer yields the same bytes as
/// [`codes_to_bytes`](crate::quantize::codes_to_bytes) on
/// [`quantize_with_isa`]'s output.
///
/// # Panics
/// Panics if `eb` is not positive.
pub fn quantize_zigzag_with_isa<F: Real>(values: &[F], eb: f64, isa: Isa) -> Vec<u64> {
    assert!(eb > 0.0, "error bound must be positive");
    let inv = 1.0 / (2.0 * eb);
    let mut out = vec![0u64; values.len()];
    // SAFETY: u64 and i64 have identical size/alignment; the kernels write
    // zig-zagged values whose bit patterns are the intended u64 contents.
    let out_i = unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut i64, out.len()) };
    if !quantize_into::<F, true>(values, inv, isa.or_scalar(), out_i) {
        for (o, v) in out_i.iter_mut().zip(values) {
            let c = (v.to_f64() * inv).round() as i64;
            *o = (c << 1) ^ (c >> 63);
        }
    }
    out
}

/// [`dequantize`](crate::quantize::dequantize) with the hot loop dispatched
/// to `isa`'s vectorized kernel. Bit-identical to the scalar reference.
pub fn dequantize_with_isa<F: Real>(q: &[i64], eb: f64, isa: Isa) -> Vec<F> {
    let mut out = vec![F::ZERO; q.len()];
    if !dequantize_into(q, eb, isa.or_scalar(), &mut out) {
        for (o, &qi) in out.iter_mut().zip(q) {
            *o = F::from_f64(qi as f64 * 2.0 * eb);
        }
    }
    out
}

/// Dispatch to a vector quantize kernel; `false` means no kernel applies
/// (unsupported ISA/arch/type) and the caller must run the scalar loop.
fn quantize_into<F: Real, const ZIGZAG: bool>(
    values: &[F],
    inv: f64,
    isa: Isa,
    out: &mut [i64],
) -> bool {
    debug_assert_eq!(values.len(), out.len());
    let _ = (values, inv, isa, &mut *out);
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        if TypeId::of::<F>() == TypeId::of::<f32>() {
            // SAFETY: F is f32 (TypeId match), so the slice cast is a
            // layout no-op; Avx2 was verified available by the dispatch.
            unsafe {
                let v = std::slice::from_raw_parts(values.as_ptr() as *const f32, values.len());
                quantize_f32_avx2::<ZIGZAG>(v, inv, out);
            }
            return true;
        }
        if TypeId::of::<F>() == TypeId::of::<f64>() {
            // SAFETY: F is f64 (TypeId match), so the slice cast is a
            // layout no-op; Avx2 was verified available by the dispatch.
            unsafe {
                let v = std::slice::from_raw_parts(values.as_ptr() as *const f64, values.len());
                quantize_f64_avx2::<ZIGZAG>(v, inv, out);
            }
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        if TypeId::of::<F>() == TypeId::of::<f32>() {
            // SAFETY: F is f32 (TypeId match), so the slice cast is a
            // layout no-op; Neon was verified available by the dispatch.
            unsafe {
                let v = std::slice::from_raw_parts(values.as_ptr() as *const f32, values.len());
                quantize_f32_neon::<ZIGZAG>(v, inv, out);
            }
            return true;
        }
        if TypeId::of::<F>() == TypeId::of::<f64>() {
            // SAFETY: F is f64 (TypeId match), so the slice cast is a
            // layout no-op; Neon was verified available by the dispatch.
            unsafe {
                let v = std::slice::from_raw_parts(values.as_ptr() as *const f64, values.len());
                quantize_f64_neon::<ZIGZAG>(v, inv, out);
            }
            return true;
        }
    }
    false
}

/// Dispatch to a vector dequantize kernel; `false` means scalar fallback.
fn dequantize_into<F: Real>(q: &[i64], eb: f64, isa: Isa, out: &mut [F]) -> bool {
    debug_assert_eq!(q.len(), out.len());
    let _ = (q, eb, isa, &mut *out);
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        if TypeId::of::<F>() == TypeId::of::<f32>() {
            // SAFETY: F is f32 (TypeId match), so the slice cast is a
            // layout no-op; Avx2 was verified available by the dispatch.
            unsafe {
                let o = std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f32, out.len());
                dequantize_f32_avx2(q, eb, o);
            }
            return true;
        }
        if TypeId::of::<F>() == TypeId::of::<f64>() {
            // SAFETY: F is f64 (TypeId match), so the slice cast is a
            // layout no-op; Avx2 was verified available by the dispatch.
            unsafe {
                let o = std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f64, out.len());
                dequantize_f64_avx2(q, eb, o);
            }
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        if TypeId::of::<F>() == TypeId::of::<f32>() {
            // SAFETY: F is f32 (TypeId match), so the slice cast is a
            // layout no-op; Neon was verified available by the dispatch.
            unsafe {
                let o = std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f32, out.len());
                dequantize_f32_neon(q, eb, o);
            }
            return true;
        }
        if TypeId::of::<F>() == TypeId::of::<f64>() {
            // SAFETY: F is f64 (TypeId match), so the slice cast is a
            // layout no-op; Neon was verified available by the dispatch.
            unsafe {
                let o = std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f64, out.len());
                dequantize_f64_neon(q, eb, o);
            }
            return true;
        }
    }
    false
}

/// Scalar zig-zag map, shared by fallback blocks and tails.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
fn zz(c: i64) -> i64 {
    (c << 1) ^ (c >> 63)
}

/// 1.5 · 2^52: adding it to a double with `|r| ≤ 2^51` pins the exponent,
/// leaving `r`'s two's-complement integer value in the low mantissa bits.
#[cfg(target_arch = "x86_64")]
const MAGIC_BITS: i64 = 0x4338_0000_0000_0000;
#[cfg(target_arch = "x86_64")]
const MAGIC_LIMIT: f64 = 2_251_799_813_685_248.0; // 2^51

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{zz, MAGIC_BITS, MAGIC_LIMIT};
    use std::arch::x86_64::*;

    /// Round ties-even result `r` of `s` fixed up to ties-away (`f64::round`
    /// semantics), then converted to `i64` via the magic constant, with a
    /// scalar fallback closure for out-of-range blocks.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability, dispatch-established.
    pub(super) unsafe fn round_away_convert(s: __m256d) -> (__m256i, bool) {
        let neg_zero = _mm256_set1_pd(-0.0);
        let r = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(s);
        let sign = _mm256_and_pd(s, neg_zero);
        let diff = _mm256_sub_pd(s, r);
        let half_s = _mm256_or_pd(_mm256_set1_pd(0.5), sign);
        let tie = _mm256_cmp_pd::<_CMP_EQ_OQ>(diff, half_s);
        let adj = _mm256_and_pd(_mm256_or_pd(_mm256_set1_pd(1.0), sign), tie);
        let r = _mm256_add_pd(r, adj);
        // Magic conversion is exact only for |r| ≤ 2^51; NaN compares false.
        let mag = _mm256_andnot_pd(neg_zero, r);
        let ok = _mm256_cmp_pd::<_CMP_LE_OQ>(mag, _mm256_set1_pd(MAGIC_LIMIT));
        let q = _mm256_sub_epi64(
            _mm256_castpd_si256(_mm256_add_pd(
                r,
                _mm256_set1_pd(f64::from_bits(MAGIC_BITS as u64)),
            )),
            _mm256_set1_epi64x(MAGIC_BITS),
        );
        (q, _mm256_movemask_pd(ok) == 0xF)
    }

    /// Zig-zag in-register: `(c << 1) ^ (c >> 63)`. AVX2 has no 64-bit
    /// arithmetic right shift, but `c >> 63` is exactly the all-ones mask
    /// `0 > c`, which `cmpgt` produces directly.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability, dispatch-established.
    pub(super) unsafe fn zigzag(q: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_slli_epi64::<1>(q),
            _mm256_cmpgt_epi64(_mm256_setzero_si256(), q),
        )
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability (dispatch-gated); all
    // accesses stay inside the argument slices.
    pub(super) unsafe fn quantize_f64<const ZIGZAG: bool>(
        values: &[f64],
        inv: f64,
        out: &mut [i64],
    ) {
        let vinv = _mm256_set1_pd(inv);
        let n = values.len() & !3;
        for i in (0..n).step_by(4) {
            let x = _mm256_loadu_pd(values.as_ptr().add(i));
            let (q, ok) = round_away_convert(_mm256_mul_pd(x, vinv));
            if ok {
                let q = if ZIGZAG { zigzag(q) } else { q };
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, q);
            } else {
                // Saturating or non-finite lanes: replicate the Rust cast.
                for j in i..i + 4 {
                    let c = (values[j] * inv).round() as i64;
                    out[j] = if ZIGZAG { zz(c) } else { c };
                }
            }
        }
        for i in n..values.len() {
            let c = (values[i] * inv).round() as i64;
            out[i] = if ZIGZAG { zz(c) } else { c };
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability (dispatch-gated); all
    // accesses stay inside the argument slices.
    pub(super) unsafe fn quantize_f32<const ZIGZAG: bool>(
        values: &[f32],
        inv: f64,
        out: &mut [i64],
    ) {
        let vinv = _mm256_set1_pd(inv);
        let n = values.len() & !3;
        for i in (0..n).step_by(4) {
            // Widening f32 -> f64 is exact, matching `v as f64 * inv`.
            let x = _mm256_cvtps_pd(_mm_loadu_ps(values.as_ptr().add(i)));
            let (q, ok) = round_away_convert(_mm256_mul_pd(x, vinv));
            if ok {
                let q = if ZIGZAG { zigzag(q) } else { q };
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, q);
            } else {
                for j in i..i + 4 {
                    let c = (values[j] as f64 * inv).round() as i64;
                    out[j] = if ZIGZAG { zz(c) } else { c };
                }
            }
        }
        for i in n..values.len() {
            let c = (values[i] as f64 * inv).round() as i64;
            out[i] = if ZIGZAG { zz(c) } else { c };
        }
    }

    /// Inverse magic `i64 -> f64` (exact for `|qi| ≤ 2^51`) and the scalar
    /// association order `(qi as f64 * 2.0) * eb`.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability (dispatch-gated); all
    // accesses stay inside the argument slices.
    pub(super) unsafe fn dequantize_f64(q: &[i64], eb: f64, out: &mut [f64]) {
        let magic_pd = _mm256_set1_pd(f64::from_bits(MAGIC_BITS as u64));
        let magic_si = _mm256_set1_epi64x(MAGIC_BITS);
        let two = _mm256_set1_pd(2.0);
        let veb = _mm256_set1_pd(eb);
        let hi = _mm256_set1_epi64x(1 << 51);
        let lo = _mm256_set1_epi64x(-(1 << 51));
        let n = q.len() & !3;
        for i in (0..n).step_by(4) {
            let qi = _mm256_loadu_si256(q.as_ptr().add(i) as *const __m256i);
            let bad = _mm256_or_si256(_mm256_cmpgt_epi64(qi, hi), _mm256_cmpgt_epi64(lo, qi));
            if _mm256_movemask_epi8(bad) == 0 {
                let d = _mm256_sub_pd(
                    _mm256_castsi256_pd(_mm256_add_epi64(qi, magic_si)),
                    magic_pd,
                );
                let t = _mm256_mul_pd(_mm256_mul_pd(d, two), veb);
                _mm256_storeu_pd(out.as_mut_ptr().add(i), t);
            } else {
                for j in i..i + 4 {
                    out[j] = (q[j] as f64 * 2.0) * eb;
                }
            }
        }
        for i in n..q.len() {
            out[i] = (q[i] as f64 * 2.0) * eb;
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    // SAFETY: precondition is AVX2 availability (dispatch-gated); all
    // accesses stay inside the argument slices.
    pub(super) unsafe fn dequantize_f32(q: &[i64], eb: f64, out: &mut [f32]) {
        let magic_pd = _mm256_set1_pd(f64::from_bits(MAGIC_BITS as u64));
        let magic_si = _mm256_set1_epi64x(MAGIC_BITS);
        let two = _mm256_set1_pd(2.0);
        let veb = _mm256_set1_pd(eb);
        let hi = _mm256_set1_epi64x(1 << 51);
        let lo = _mm256_set1_epi64x(-(1 << 51));
        let n = q.len() & !3;
        for i in (0..n).step_by(4) {
            let qi = _mm256_loadu_si256(q.as_ptr().add(i) as *const __m256i);
            let bad = _mm256_or_si256(_mm256_cmpgt_epi64(qi, hi), _mm256_cmpgt_epi64(lo, qi));
            if _mm256_movemask_epi8(bad) == 0 {
                let d = _mm256_sub_pd(
                    _mm256_castsi256_pd(_mm256_add_epi64(qi, magic_si)),
                    magic_pd,
                );
                let t = _mm256_mul_pd(_mm256_mul_pd(d, two), veb);
                // Narrowing rounds nearest-even, matching `as f32`.
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm256_cvtpd_ps(t));
            } else {
                for j in i..i + 4 {
                    out[j] = ((q[j] as f64 * 2.0) * eb) as f32;
                }
            }
        }
        for i in n..q.len() {
            out[i] = ((q[i] as f64 * 2.0) * eb) as f32;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{
    dequantize_f32 as dequantize_f32_avx2, dequantize_f64 as dequantize_f64_avx2,
    quantize_f32 as quantize_f32_avx2, quantize_f64 as quantize_f64_avx2,
};

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::zz;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    // SAFETY: precondition is NEON availability (aarch64 baseline,
    // dispatch-gated); all accesses stay inside the argument slices.
    pub(super) unsafe fn quantize_f64<const ZIGZAG: bool>(
        values: &[f64],
        inv: f64,
        out: &mut [i64],
    ) {
        let n = values.len() & !1;
        for i in (0..n).step_by(2) {
            let s = vmulq_n_f64(vld1q_f64(values.as_ptr().add(i)), inv);
            // FRINTA rounds ties away (f64::round); FCVTZS saturates and
            // maps NaN to 0, exactly matching Rust's `as i64`.
            let q = vcvtq_s64_f64(vrndaq_f64(s));
            let q = if ZIGZAG {
                veorq_s64(vshlq_n_s64::<1>(q), vshrq_n_s64::<63>(q))
            } else {
                q
            };
            vst1q_s64(out.as_mut_ptr().add(i), q);
        }
        for i in n..values.len() {
            let c = (values[i] * inv).round() as i64;
            out[i] = if ZIGZAG { zz(c) } else { c };
        }
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    // SAFETY: precondition is NEON availability (aarch64 baseline,
    // dispatch-gated); all accesses stay inside the argument slices.
    pub(super) unsafe fn quantize_f32<const ZIGZAG: bool>(
        values: &[f32],
        inv: f64,
        out: &mut [i64],
    ) {
        let n = values.len() & !1;
        for i in (0..n).step_by(2) {
            // Widening f32 -> f64 is exact, matching `v as f64 * inv`.
            let x = vcvt_f64_f32(vld1_f32(values.as_ptr().add(i)));
            let q = vcvtq_s64_f64(vrndaq_f64(vmulq_n_f64(x, inv)));
            let q = if ZIGZAG {
                veorq_s64(vshlq_n_s64::<1>(q), vshrq_n_s64::<63>(q))
            } else {
                q
            };
            vst1q_s64(out.as_mut_ptr().add(i), q);
        }
        for i in n..values.len() {
            let c = (values[i] as f64 * inv).round() as i64;
            out[i] = if ZIGZAG { zz(c) } else { c };
        }
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    // SAFETY: precondition is NEON availability (aarch64 baseline,
    // dispatch-gated); all accesses stay inside the argument slices.
    pub(super) unsafe fn dequantize_f64(q: &[i64], eb: f64, out: &mut [f64]) {
        let n = q.len() & !1;
        for i in (0..n).step_by(2) {
            // SCVTF is the exact `i64 as f64` conversion; products use the
            // scalar association order `(qi as f64 * 2.0) * eb`.
            let d = vcvtq_f64_s64(vld1q_s64(q.as_ptr().add(i)));
            let t = vmulq_n_f64(vmulq_n_f64(d, 2.0), eb);
            vst1q_f64(out.as_mut_ptr().add(i), t);
        }
        for i in n..q.len() {
            out[i] = (q[i] as f64 * 2.0) * eb;
        }
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    // SAFETY: precondition is NEON availability (aarch64 baseline,
    // dispatch-gated); all accesses stay inside the argument slices.
    pub(super) unsafe fn dequantize_f32(q: &[i64], eb: f64, out: &mut [f32]) {
        let n = q.len() & !1;
        for i in (0..n).step_by(2) {
            let d = vcvtq_f64_s64(vld1q_s64(q.as_ptr().add(i)));
            let t = vmulq_n_f64(vmulq_n_f64(d, 2.0), eb);
            // FCVTN narrows nearest-even, matching `as f32`.
            vst1_f32(out.as_mut_ptr().add(i), vcvt_f32_f64(t));
        }
        for i in n..q.len() {
            out[i] = ((q[i] as f64 * 2.0) * eb) as f32;
        }
    }
}

#[cfg(target_arch = "aarch64")]
use arm::{
    dequantize_f32 as dequantize_f32_neon, dequantize_f64 as dequantize_f64_neon,
    quantize_f32 as quantize_f32_neon, quantize_f64 as quantize_f64_neon,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{codes_to_bytes, dequantize, quantize};

    fn available_isas() -> Vec<Isa> {
        [Isa::Scalar, Isa::Avx2, Isa::Neon]
            .into_iter()
            .filter(|i| i.is_available())
            .collect()
    }

    /// Value sets covering smooth data, exact ties (with `eb = 0.25`,
    /// `v = 0.25·k` lands on `k/2`, half of which are ties), negatives,
    /// zeros, saturating magnitudes, and non-finite inputs.
    fn f64_cases() -> Vec<Vec<f64>> {
        vec![
            (0..1001).map(|i| (i as f64 * 0.17).sin() * 9.0).collect(),
            (-200..200).map(|i| i as f64 * 0.25).collect(),
            vec![0.0, -0.0, 1.0, -1.0],
            vec![1e300, -1e300, 4e15, -4e15, 2.5e15],
            vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5, -0.5],
            Vec::new(),
            vec![3.75],
            (0..37).map(|i| i as f64 - 18.0).collect(),
        ]
    }

    fn f32_cases() -> Vec<Vec<f32>> {
        f64_cases()
            .into_iter()
            .map(|v| v.into_iter().map(|x| x as f32).collect())
            .collect()
    }

    #[test]
    fn quantize_with_isa_matches_scalar_f64() {
        for vals in f64_cases() {
            for eb in [0.25, 1e-3, 7.5e-7] {
                let want = quantize(&vals, eb);
                for isa in available_isas() {
                    assert_eq!(
                        quantize_with_isa(&vals, eb, isa),
                        want,
                        "isa={isa} eb={eb} n={}",
                        vals.len()
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_with_isa_matches_scalar_f32() {
        for vals in f32_cases() {
            for eb in [0.25, 1e-3] {
                let want = quantize(&vals, eb);
                for isa in available_isas() {
                    assert_eq!(quantize_with_isa(&vals, eb, isa), want, "isa={isa} eb={eb}");
                }
            }
        }
    }

    #[test]
    fn ties_round_away_from_zero() {
        // eb = 0.25 → inv = 2; v = ±0.25 quantizes to s = ±0.5, a tie.
        let vals = [0.25f64, -0.25, 0.75, -0.75, 1.25, -1.25];
        let want: Vec<i64> = vec![1, -1, 2, -2, 3, -3];
        for isa in available_isas() {
            assert_eq!(quantize_with_isa(&vals, 0.25, isa), want, "isa={isa}");
        }
    }

    #[test]
    fn dequantize_with_isa_matches_scalar() {
        let codes: Vec<i64> = vec![
            0,
            1,
            -1,
            1000,
            -999,
            i64::MAX,
            i64::MIN,
            (1 << 51) + 1,
            -(1 << 51) - 1,
            (1 << 51),
            -(1 << 51),
            12345678901,
        ];
        for eb in [0.25, 1e-4] {
            let want64: Vec<f64> = dequantize(&codes, eb);
            let want32: Vec<f32> = dequantize(&codes, eb);
            for isa in available_isas() {
                let got64: Vec<f64> = dequantize_with_isa(&codes, eb, isa);
                let got32: Vec<f32> = dequantize_with_isa(&codes, eb, isa);
                assert_eq!(
                    got64.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want64.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "isa={isa} eb={eb}"
                );
                assert_eq!(
                    got32.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want32.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "isa={isa} eb={eb}"
                );
            }
        }
    }

    #[test]
    fn fused_zigzag_matches_two_pass() {
        for vals in f64_cases() {
            let codes = quantize(&vals, 0.25);
            let want: Vec<u64> = codes
                .iter()
                .map(|&c| ((c << 1) ^ (c >> 63)) as u64)
                .collect();
            for isa in available_isas() {
                assert_eq!(
                    quantize_zigzag_with_isa(&vals, 0.25, isa),
                    want,
                    "isa={isa}"
                );
            }
        }
    }

    #[test]
    fn fused_zigzag_feeds_varint_stream() {
        let vals: Vec<f64> = (0..500).map(|i| (i as f64 * 0.31).cos() * 40.0).collect();
        let eb = 1e-2;
        let want = codes_to_bytes(&quantize(&vals, eb));
        for isa in available_isas() {
            let zig = quantize_zigzag_with_isa(&vals, eb, isa);
            let mut got = Vec::new();
            for &z in &zig {
                let mut v = z;
                loop {
                    let byte = (v & 0x7f) as u8;
                    v >>= 7;
                    if v == 0 {
                        got.push(byte);
                        break;
                    }
                    got.push(byte | 0x80);
                }
            }
            assert_eq!(got, want, "isa={isa}");
        }
    }

    #[test]
    fn unavailable_isa_degrades_to_scalar() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.3).collect();
        let missing = [Isa::Avx2, Isa::Neon]
            .into_iter()
            .find(|i| !i.is_available());
        if let Some(isa) = missing {
            assert_eq!(quantize_with_isa(&vals, 0.1, isa), quantize(&vals, 0.1));
        }
    }

    #[test]
    #[should_panic]
    fn zero_error_bound_rejected() {
        quantize_with_isa(&[1.0f64], 0.0, Isa::Scalar);
    }
}
