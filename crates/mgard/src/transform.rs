//! Tensor-product multilevel (re)decomposition over 1D/2D/3D arrays.
//!
//! Each level applies the 1D transform of [`crate::line`] along every
//! dimension of the current active grid (all lines of one axis pass are
//! independent and processed in parallel). Recomposition replays levels
//! and axes in exactly reverse order, making the whole transform exactly
//! invertible up to floating-point roundoff — the property MDR relies on
//! for near-lossless refactoring.

use crate::grid::Hierarchy;
use crate::line::{decompose_line, recompose_line, LineScratch};
use crate::Real;
use rayon::prelude::*;

/// Shared mutable base pointer for disjoint parallel line updates.
///
/// Soundness: each line id of one axis pass touches a disjoint set of
/// elements (lines differ in at least one non-axis coordinate).
struct SyncPtr<F>(*mut F);
// SAFETY: the pointer targets the caller's buffer for the duration of one
// axis pass; each worker touches only its own line's elements.
unsafe impl<F> Send for SyncPtr<F> {}
// SAFETY: concurrent access is confined to disjoint element sets (lines
// of one axis pass never share an element), so no location races.
unsafe impl<F> Sync for SyncPtr<F> {}

impl<F> SyncPtr<F> {
    // SAFETY: caller must pass an in-bounds `i` belonging to its own line.
    #[inline]
    unsafe fn read(&self, i: usize) -> F
    where
        F: Copy,
    {
        *self.0.add(i)
    }
    // SAFETY: caller must pass an in-bounds `i` belonging to its own line.
    #[inline]
    unsafe fn write(&self, i: usize, v: F) {
        *self.0.add(i) = v;
    }
}

/// One axis pass over the active grid at a level.
///
/// `dims`: active extent per dimension; `strides`: element stride between
/// active nodes per dimension (original-grid units × row-major stride).
fn axis_pass<F: Real>(
    data: &mut [F],
    dims: &[usize],
    elem_strides: &[usize],
    axis: usize,
    decompose_dir: bool,
    correct: bool,
) {
    let n = dims[axis];
    if n < 3 {
        return;
    }
    // Enumerate lines: mixed-radix over the other dimensions.
    let other: Vec<usize> = (0..dims.len()).filter(|&d| d != axis).collect();
    let num_lines: usize = other.iter().map(|&d| dims[d]).product::<usize>().max(1);
    let axis_stride = elem_strides[axis];
    let ptr = SyncPtr(data.as_mut_ptr());

    (0..num_lines)
        .into_par_iter()
        .with_min_len(8)
        .for_each_init(
            || (LineScratch::<F>::with_capacity(n), vec![F::ZERO; n]),
            |(scratch, buf), line_id| {
                let mut rem = line_id;
                let mut base = 0usize;
                for &d in other.iter().rev() {
                    let idx = rem % dims[d];
                    rem /= dims[d];
                    base += idx * elem_strides[d];
                }
                // Gather, transform, scatter.
                for (i, slot) in buf.iter_mut().enumerate() {
                    // SAFETY: disjoint lines; in-bounds by construction.
                    *slot = unsafe { ptr.read(base + i * axis_stride) };
                }
                if decompose_dir {
                    decompose_line(buf, scratch, correct);
                } else {
                    recompose_line(buf, scratch, correct);
                }
                for (i, &v) in buf.iter().enumerate() {
                    // SAFETY: same indices the gather above read — disjoint
                    // across lines and in-bounds by construction.
                    unsafe { ptr.write(base + i * axis_stride, v) };
                }
            },
        );
}

fn level_geometry(h: &Hierarchy, l: usize) -> (Vec<usize>, Vec<usize>) {
    let dims = h.shape_at_level(l);
    let row_major = h.strides();
    let elem_strides: Vec<usize> = (0..h.ndims())
        .map(|d| h.stride_at_level(d, l) * row_major[d])
        .collect();
    (dims, elem_strides)
}

/// Decompose `data` (row-major, shape `h.shape`) in place through all
/// levels of `h`. Even/odd interleaving keeps every coefficient at its
/// original position; use [`crate::levels::extract_levels`] to pull the
/// per-level groups out.
///
/// `correct` enables the L2 projection correction (MGARD); without it the
/// transform is plain hierarchical interpolation.
///
/// # Panics
/// Panics if `data.len()` does not match the hierarchy.
pub fn decompose<F: Real>(data: &mut [F], h: &Hierarchy, correct: bool) {
    assert_eq!(
        data.len(),
        h.len(),
        "data length must match hierarchy shape"
    );
    for l in 0..h.levels {
        let (dims, elem_strides) = level_geometry(h, l);
        for axis in 0..h.ndims() {
            axis_pass(data, &dims, &elem_strides, axis, true, correct);
        }
    }
}

/// Exact inverse of [`decompose`].
pub fn recompose<F: Real>(data: &mut [F], h: &Hierarchy, correct: bool) {
    recompose_to_level(data, h, correct, 0);
}

/// Partially recompose down to `target_level` (0 = full grid): only the
/// levels coarser than the target are inverted, leaving a valid nodal
/// representation on the level-`target_level` active grid. This is the
/// *resolution-progressive* access mode of the MDR line: a coarse
/// rendering needs neither the finer coefficients nor the finer
/// recomposition passes.
///
/// # Panics
/// Panics if `data` does not match the hierarchy or `target_level`
/// exceeds the hierarchy depth.
pub fn recompose_to_level<F: Real>(
    data: &mut [F],
    h: &Hierarchy,
    correct: bool,
    target_level: usize,
) {
    assert_eq!(
        data.len(),
        h.len(),
        "data length must match hierarchy shape"
    );
    assert!(
        target_level <= h.levels,
        "level {target_level} beyond hierarchy"
    );
    for l in (target_level..h.levels).rev() {
        let (dims, elem_strides) = level_geometry(h, l);
        for axis in (0..h.ndims()).rev() {
            axis_pass(data, &dims, &elem_strides, axis, false, correct);
        }
    }
}

/// Gather the active grid of `level` into a dense row-major array of
/// shape [`Hierarchy::shape_at_level`].
pub fn extract_active_grid<F: Real>(data: &[F], h: &Hierarchy, level: usize) -> Vec<F> {
    assert_eq!(
        data.len(),
        h.len(),
        "data length must match hierarchy shape"
    );
    assert!(level <= h.levels, "level {level} beyond hierarchy");
    let nd = h.ndims();
    let dims = h.shape_at_level(level);
    let row_major = h.strides();
    let strides: Vec<usize> = (0..nd)
        .map(|d| h.stride_at_level(d, level) * row_major[d])
        .collect();
    let count: usize = dims.iter().product();
    let mut out = Vec::with_capacity(count);
    let mut coord = vec![0usize; nd];
    for _ in 0..count {
        let flat: usize = coord.iter().zip(&strides).map(|(&c, &s)| c * s).sum();
        out.push(data[flat]);
        for d in (0..nd).rev() {
            coord[d] += 1;
            if coord[d] < dims[d] {
                break;
            }
            coord[d] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_3d(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let (xf, yf, zf) = (x as f64, y as f64, z as f64);
                    v.push((xf * 0.3).sin() * (yf * 0.17).cos() + 0.05 * (zf * 0.9).sin());
                }
            }
        }
        v
    }

    #[test]
    fn roundtrip_1d() {
        for n in [3usize, 16, 17, 100, 257] {
            let h = Hierarchy::full(&[n]);
            let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() * 5.0).collect();
            let mut data = orig.clone();
            decompose(&mut data, &h, true);
            recompose(&mut data, &h, true);
            for (a, b) in orig.iter().zip(&data) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_2d_non_square() {
        let h = Hierarchy::full(&[33, 20]);
        let orig = field_3d(33, 20, 1);
        let mut data = orig.clone();
        decompose(&mut data, &h, true);
        recompose(&mut data, &h, true);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_3d_odd_even_mix() {
        for shape in [[9usize, 8, 7], [17, 17, 17], [5, 32, 11]] {
            let h = Hierarchy::full(&shape);
            let orig = field_3d(shape[0], shape[1], shape[2]);
            let mut data = orig.clone();
            decompose(&mut data, &h, true);
            recompose(&mut data, &h, true);
            for (a, b) in orig.iter().zip(&data) {
                assert!((a - b).abs() < 1e-10, "shape={shape:?}");
            }
        }
    }

    #[test]
    fn roundtrip_without_correction() {
        let h = Hierarchy::full(&[33, 33]);
        let orig = field_3d(33, 33, 1);
        let mut data = orig.clone();
        decompose(&mut data, &h, false);
        recompose(&mut data, &h, false);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn trilinear_field_decomposes_to_coarse_only() {
        // A multilinear function is reproduced exactly by interpolation, so
        // every detail coefficient must vanish (correction included: the
        // projection of zero detail is zero).
        let (nx, ny) = (17, 9);
        let h = Hierarchy::full(&[nx, ny]);
        let mut data: Vec<f64> = Vec::new();
        for x in 0..nx {
            for y in 0..ny {
                data.push(2.0 * x as f64 - 3.0 * y as f64 + 0.25 * (x * y) as f64 + 1.0);
            }
        }
        decompose(&mut data, &h, true);
        // Positions with any odd level-0 coordinate are level-0 details.
        for x in 0..nx {
            for y in 0..ny {
                if x % 2 == 1 || y % 2 == 1 {
                    let v = data[x * ny + y];
                    assert!(v.abs() < 1e-9, "detail at ({x},{y}) = {v}");
                }
            }
        }
    }

    #[test]
    fn decomposition_concentrates_energy_in_coarse_levels() {
        let h = Hierarchy::full(&[65, 65]);
        let orig = field_3d(65, 65, 1);
        let mut data = orig.clone();
        decompose(&mut data, &h, true);
        // Detail coefficients (any odd coordinate) must be small relative
        // to the smooth field's range.
        let mut max_detail = 0.0f64;
        for x in 0..65 {
            for y in 0..65 {
                if x % 2 == 1 || y % 2 == 1 {
                    max_detail = max_detail.max(data[x * 65 + y].abs());
                }
            }
        }
        let range = orig.iter().cloned().fold(f64::MIN, f64::max)
            - orig.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max_detail < 0.05 * range,
            "max detail {max_detail} vs range {range}"
        );
    }

    #[test]
    fn degenerate_shapes_pass_through() {
        for shape in [vec![1usize], vec![2, 2], vec![1, 1, 5]] {
            let h = Hierarchy::full(&shape);
            let n: usize = shape.iter().product();
            let orig: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut data = orig.clone();
            decompose(&mut data, &h, true);
            recompose(&mut data, &h, true);
            for (a, b) in orig.iter().zip(&data) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_length_panics() {
        let h = Hierarchy::full(&[4, 4]);
        let mut data = vec![0.0f64; 15];
        decompose(&mut data, &h, true);
    }

    #[test]
    fn partial_recompose_reproduces_coarse_grid() {
        // Recomposing to level l and sampling the active grid must equal
        // recomposing fully and subsampling... NOT in general (coarse nodal
        // values are projections, not samples) — but recompose_to_level(0)
        // must equal recompose, and each target level must round-trip
        // against its own decompose prefix.
        let h = Hierarchy::full(&[17, 17]);
        let orig = field_3d(17, 17, 1);
        let mut full = orig.clone();
        decompose(&mut full, &h, true);

        let mut a = full.clone();
        recompose_to_level(&mut a, &h, true, 0);
        let mut b = full.clone();
        recompose(&mut b, &h, true);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }

        // Level-l grid from partial recompose == decompose run for only
        // the coarser levels (the level-l nodal representation).
        for level in 1..=h.levels {
            let mut partial = full.clone();
            recompose_to_level(&mut partial, &h, true, level);
            let coarse = extract_active_grid(&partial, &h, level);
            assert_eq!(coarse.len(), h.len_at_level(level));

            // Reference: decompose the original only down to `level`.
            let mut reference = orig.clone();
            for l in 0..level {
                let (dims, elem_strides) = level_geometry(&h, l);
                for axis in 0..h.ndims() {
                    axis_pass(&mut reference, &dims, &elem_strides, axis, true, true);
                }
            }
            let ref_coarse = extract_active_grid(&reference, &h, level);
            for (x, y) in coarse.iter().zip(&ref_coarse) {
                assert!((x - y).abs() < 1e-10, "level {level}");
            }
        }
    }

    #[test]
    fn extract_active_grid_level_zero_is_identity() {
        let h = Hierarchy::full(&[9, 8]);
        let data: Vec<f64> = (0..72).map(|i| i as f64).collect();
        assert_eq!(extract_active_grid(&data, &h, 0), data);
    }

    #[test]
    fn extract_active_grid_strides_correctly() {
        let h = Hierarchy::full(&[5, 5]);
        let data: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let coarse = extract_active_grid(&data, &h, 1); // 3x3: indices 0,2,4
        assert_eq!(
            coarse,
            vec![0.0, 2.0, 4.0, 10.0, 12.0, 14.0, 20.0, 22.0, 24.0]
        );
    }
}
