//! # hpmdr-mgard — multilevel data decomposition substrate
//!
//! HP-MDR composes its optimized encoding stages with the multilevel
//! (re)decomposition of (P)MGARD \[13, 24\]: data is recursively split into
//! a coarse grid plus per-level *multilevel coefficients* (detail values
//! minus their multilinear interpolation from the coarser grid, with an
//! L2-projection correction applied to the coarse nodes). MDR then encodes
//! each level's coefficients into bitplanes independently, which is what
//! makes error-controlled progressive retrieval possible.
//!
//! This crate implements that substrate from scratch for 1D/2D/3D arrays
//! of `f32`/`f64` with arbitrary (non-dyadic) extents:
//!
//! * [`mod@grid`] — level geometry: per-dimension active index sets coarsening
//!   as `n_{l+1} = ceil(n_l / 2)`.
//! * [`mod@line`] — the 1D transform: interpolation detail plus the L2
//!   correction obtained from a symmetric tridiagonal (Thomas) solve.
//! * [`transform`] — tensor-product application along each axis per level,
//!   exactly invertible by construction.
//! * [`levels`] — extraction/injection of per-level coefficient groups and
//!   the conservative error-propagation weights MDR's retrieval planner
//!   uses.
//! * [`quantize`] — uniform level-scaled quantization (used by the MGARD
//!   baseline codec of the evaluation, not by HP-MDR's bitplane path).
//! * [`mod@simd`] — runtime-dispatched AVX2/NEON kernels for the
//!   quantize/dequantize/zig-zag hot loops, bit-identical to the scalar
//!   reference on every ISA.

pub mod grid;
pub mod levels;
pub mod line;
pub mod quantize;
pub mod simd;
pub mod transform;

pub use grid::Hierarchy;
pub use levels::{
    extract_levels, extract_levels_with, inject_levels, inject_levels_with, level_error_weights,
    LevelSet,
};
pub use simd::{dequantize_with_isa, quantize_with_isa, quantize_zigzag_with_isa, Isa};
pub use transform::{decompose, extract_active_grid, recompose, recompose_to_level};

/// Minimal float abstraction for the decomposition math.
pub trait Real:
    Copy
    + PartialOrd
    + Send
    + Sync
    + 'static
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Convert from f64 (used for constants like ½).
    fn from_f64(v: f64) -> Self;
    /// Convert to f64 (used for metrics and error estimates).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs_val(self) -> Self;
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs_val(self) -> Self {
        self.abs()
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs_val(self) -> Self {
        self.abs()
    }
}
