//! Uniform error-bounded quantization of multilevel coefficients.
//!
//! HP-MDR's own path keeps full-precision coefficients and lets bitplane
//! truncation control the error; this module exists for the evaluation's
//! *MGARD baseline codec* (classic compress-once MGARD: decompose →
//! level-scaled linear quantization → lossless encoding) and for the
//! multi-component baseline built on top of it.

use crate::grid::Hierarchy;
use crate::levels::level_error_weights;
use crate::Real;

/// Quantize with bin width `2*eb`: round-to-nearest guarantees
/// `|v - deq(q)| ≤ eb`.
pub fn quantize<F: Real>(values: &[F], eb: f64) -> Vec<i64> {
    assert!(eb > 0.0, "error bound must be positive");
    let inv = 1.0 / (2.0 * eb);
    values
        .iter()
        .map(|v| {
            let q = v.to_f64() * inv;
            q.round() as i64
        })
        .collect()
}

/// Inverse of [`quantize`].
pub fn dequantize<F: Real>(q: &[i64], eb: f64) -> Vec<F> {
    q.iter()
        .map(|&qi| F::from_f64(qi as f64 * 2.0 * eb))
        .collect()
}

/// Per-group error bounds that make the *reconstruction* error at most
/// `eb`: the target is split equally across groups after weighting by the
/// propagation factors of [`level_error_weights`].
pub fn group_error_bounds(h: &Hierarchy, correction: bool, eb: f64) -> Vec<f64> {
    let w = level_error_weights(h, correction);
    // Equal share of the target per group, divided by the group's
    // amplification factor so that Σ w_k · e_k = eb.
    let per_group = eb / w.len() as f64;
    w.iter().map(|wi| per_group / wi).collect()
}

/// Map signed quantization codes to bytes with zig-zag + LEB128 varints
/// (small magnitudes dominate for smooth data, so this is compact and
/// feeds well into the lossless crate's entropy coders).
pub fn codes_to_bytes(codes: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len() * 2);
    for &c in codes {
        let z = ((c << 1) ^ (c >> 63)) as u64; // zig-zag
        let mut v = z;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    out
}

/// Inverse of [`codes_to_bytes`]; `count` is the number of codes expected.
///
/// # Panics
/// Panics on truncated input.
pub fn bytes_to_codes(bytes: &[u8], count: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(count);
    let mut i = 0usize;
    for _ in 0..count {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            assert!(i < bytes.len(), "truncated code stream");
            let b = bytes[i];
            i += 1;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let c = ((v >> 1) as i64) ^ -((v & 1) as i64); // un-zig-zag
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_error_bound() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.17).sin() * 9.0).collect();
        for eb in [1e-1, 1e-3, 1e-6] {
            let q = quantize(&vals, eb);
            let back: Vec<f64> = dequantize(&q, eb);
            for (a, b) in vals.iter().zip(&back) {
                assert!((a - b).abs() <= eb + 1e-15, "eb={eb}");
            }
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        let codes = vec![
            0i64,
            1,
            -1,
            2,
            -2,
            1000,
            -1000,
            i32::MAX as i64,
            i32::MIN as i64,
        ];
        let bytes = codes_to_bytes(&codes);
        assert_eq!(bytes_to_codes(&bytes, codes.len()), codes);
    }

    #[test]
    fn small_codes_are_one_byte() {
        let codes = vec![0i64, 1, -1, 63, -63];
        let bytes = codes_to_bytes(&codes);
        assert_eq!(bytes.len(), codes.len());
    }

    #[test]
    fn group_bounds_sum_to_target_under_weights() {
        let h = Hierarchy::full(&[65, 65]);
        let eb = 0.01;
        let bounds = group_error_bounds(&h, true, eb);
        let w = level_error_weights(&h, true);
        let total: f64 = w.iter().zip(&bounds).map(|(a, b)| a * b).sum();
        assert!((total - eb).abs() < 1e-12, "total {total}");
    }

    #[test]
    #[should_panic]
    fn zero_error_bound_rejected() {
        quantize(&[1.0f64], 0.0);
    }

    #[test]
    #[should_panic]
    fn truncated_code_stream_panics() {
        bytes_to_codes(&[0x80], 1);
    }
}
