//! # hpmdr-datasets — synthetic evaluation datasets and metrics
//!
//! The paper evaluates on five real scientific datasets (Table 1): NYX
//! (cosmology), LETKF (ensemble weather), Miranda (hydrodynamics, f64),
//! Hurricane ISABEL (climate), and JHTDB (isotropic turbulence). Those
//! archives are multi-GB downloads unavailable here, so this crate
//! generates *seeded synthetic equivalents* that reproduce the structural
//! properties the evaluation actually exercises — smoothness spectra,
//! multiscale turbulence, sharp material interfaces, vortex structure, and
//! multi-variable velocity fields — at laptop-scale grids (extents are
//! configurable; defaults keep full runs in seconds).
//!
//! Every generator is deterministic given its seed, so experiments are
//! reproducible bit-for-bit across runs and platforms.
//!
//! [`metrics`] adds the error/rate measures used across EXPERIMENTS.md
//! (L∞, RMSE, PSNR, bitrate, compression ratio), and [`regions`] adds
//! deterministic region-query workloads (uniform and hotspot-clustered
//! hyperslabs at a target selectivity) for the chunked retrieval path.

pub mod fields;
pub mod metrics;
pub mod regions;
pub mod suite;

pub use fields::FieldSpec;
pub use regions::{hotspot_queries, uniform_queries, RegionQuery};
pub use suite::{Dataset, DatasetKind, Variable};
