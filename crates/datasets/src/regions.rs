//! Deterministic region-query workloads.
//!
//! The chunked retrieval path (`hpmdr-core`'s `roi` module) turns the
//! library into a queryable array service; evaluating it needs realistic
//! *query mixes*, not just full-domain decodes. This module generates
//! seeded hyperslab workloads over a domain at a target selectivity (the
//! fraction of the domain each query covers):
//!
//! * [`uniform_queries`] — query corners uniform over the domain, the
//!   scattered-access pattern of ad-hoc analysis;
//! * [`hotspot_queries`] — corners clustered around a few hot centers,
//!   the skewed pattern of feature-tracking workloads (everyone asks
//!   about the same vortex).
//!
//! Generators are pure functions of their arguments, so benchmark runs
//! are reproducible bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One hyperslab query: `start[d] .. start[d] + extent[d]` per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionQuery {
    /// Inclusive lower corner.
    pub start: Vec<usize>,
    /// Extent per dimension (all ≥ 1).
    pub extent: Vec<usize>,
}

impl RegionQuery {
    /// Element count of the query box.
    pub fn len(&self) -> usize {
        self.extent.iter().product()
    }

    /// Whether the query selects no elements (never true for generated
    /// queries).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Achieved selectivity against a domain of `shape`.
    pub fn selectivity(&self, shape: &[usize]) -> f64 {
        self.len() as f64 / shape.iter().product::<usize>() as f64
    }
}

/// Per-dimension extent whose box covers ≈ `selectivity` of `shape`
/// (isotropic: each dimension contributes the same linear fraction).
fn extent_for_selectivity(shape: &[usize], selectivity: f64) -> Vec<usize> {
    let frac = selectivity.clamp(1e-9, 1.0).powf(1.0 / shape.len() as f64);
    shape
        .iter()
        .map(|&n| ((n as f64 * frac).round() as usize).clamp(1, n))
        .collect()
}

fn query_at(shape: &[usize], extent: &[usize], corner_frac: &[f64]) -> RegionQuery {
    let start: Vec<usize> = shape
        .iter()
        .zip(extent)
        .zip(corner_frac)
        .map(|((&n, &e), &f)| ((f * (n - e + 1) as f64) as usize).min(n - e))
        .collect();
    RegionQuery {
        start,
        extent: extent.to_vec(),
    }
}

/// `count` queries of ≈ `selectivity` coverage with corners uniform over
/// the domain.
///
/// # Panics
/// Panics on empty shapes or zero extents.
pub fn uniform_queries(
    shape: &[usize],
    selectivity: f64,
    count: usize,
    seed: u64,
) -> Vec<RegionQuery> {
    assert!(!shape.is_empty() && shape.iter().all(|&n| n >= 1));
    let extent = extent_for_selectivity(shape, selectivity);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let frac: Vec<f64> = shape.iter().map(|_| rng.gen::<f64>()).collect();
            query_at(shape, &extent, &frac)
        })
        .collect()
}

/// `count` queries of ≈ `selectivity` coverage whose corners cluster
/// (Gaussian-ish, via averaged uniforms) around `hotspots` seeded hot
/// centers — the skewed access pattern of feature-tracking analysis.
///
/// # Panics
/// Panics on empty shapes, zero extents, or `hotspots == 0`.
pub fn hotspot_queries(
    shape: &[usize],
    selectivity: f64,
    count: usize,
    hotspots: usize,
    seed: u64,
) -> Vec<RegionQuery> {
    assert!(!shape.is_empty() && shape.iter().all(|&n| n >= 1));
    assert!(hotspots >= 1, "need at least one hotspot");
    let extent = extent_for_selectivity(shape, selectivity);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..hotspots)
        .map(|_| shape.iter().map(|_| rng.gen::<f64>()).collect())
        .collect();
    (0..count)
        .map(|_| {
            let center = &centers[(rng.gen::<u64>() as usize) % hotspots];
            // Triangular jitter on ±25% of the domain around the center
            // (sum of two uniforms concentrates toward it).
            let frac: Vec<f64> = center
                .iter()
                .map(|&c| {
                    let jitter = (rng.gen::<f64>() + rng.gen::<f64>()) * 0.25 - 0.25;
                    (c + jitter).clamp(0.0, 1.0)
                })
                .collect();
            query_at(shape, &extent, &frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_fit_the_domain_and_hit_selectivity() {
        let shape = [64usize, 48, 40];
        for sel in [0.001, 0.01, 0.1, 0.5] {
            let qs = uniform_queries(&shape, sel, 32, 7);
            assert_eq!(qs.len(), 32);
            for q in &qs {
                for (d, &n) in shape.iter().enumerate() {
                    assert!(q.start[d] + q.extent[d] <= n);
                    assert!(q.extent[d] >= 1);
                }
                // Rounding per dimension compounds; an order of magnitude
                // envelope is what the benches rely on.
                let got = q.selectivity(&shape);
                assert!(
                    got > sel * 0.2 && got < sel * 5.0 + 1e-9,
                    "sel {sel} got {got}"
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let shape = [33usize, 57];
        assert_eq!(
            uniform_queries(&shape, 0.05, 16, 42),
            uniform_queries(&shape, 0.05, 16, 42)
        );
        assert_eq!(
            hotspot_queries(&shape, 0.05, 16, 3, 42),
            hotspot_queries(&shape, 0.05, 16, 3, 42)
        );
        assert_ne!(
            uniform_queries(&shape, 0.05, 16, 42),
            uniform_queries(&shape, 0.05, 16, 43)
        );
    }

    #[test]
    fn hotspot_queries_cluster() {
        let shape = [128usize, 128];
        let qs = hotspot_queries(&shape, 0.01, 64, 1, 11);
        // One hotspot: corner spread must be far tighter than uniform.
        let mean: Vec<f64> = (0..2)
            .map(|d| qs.iter().map(|q| q.start[d] as f64).sum::<f64>() / qs.len() as f64)
            .collect();
        let spread: f64 = qs
            .iter()
            .map(|q| {
                (0..2)
                    .map(|d| (q.start[d] as f64 - mean[d]).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        assert!(spread <= 0.3 * 128.0, "spread {spread}");
    }

    #[test]
    fn tiny_selectivity_still_yields_valid_boxes() {
        let qs = uniform_queries(&[5, 4], 1e-8, 4, 1);
        for q in &qs {
            assert_eq!(q.extent, vec![1, 1]);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn full_selectivity_covers_the_domain() {
        let qs = uniform_queries(&[10, 12], 1.0, 2, 5);
        for q in &qs {
            assert_eq!(q.start, vec![0, 0]);
            assert_eq!(q.extent, vec![10, 12]);
        }
    }
}
