//! The Table-1 dataset suite, scaled for laptop reproduction.

use crate::fields;
use serde::{Deserialize, Serialize};

/// Which evaluation dataset to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Cosmology (6 variables, f32): lognormal baryon density, temperature,
    /// and a 3-component velocity field plus dark-matter density.
    Nyx,
    /// Ensemble weather assimilation (3 members, f32), smooth large-scale.
    Letkf,
    /// Hydrodynamics with sharp mixing interfaces (3 variables, f64).
    Miranda,
    /// Hurricane fields with vortex structure (3 variables, f32).
    HurricaneIsabel,
    /// Isotropic turbulence velocity (3 components, f32), largest grid.
    Jhtdb,
    /// Cropped JHTDB region used for single-GPU QoI studies.
    MiniJhtdb,
}

impl DatasetKind {
    /// All five Table-1 datasets.
    pub const TABLE1: [DatasetKind; 5] = [
        DatasetKind::Nyx,
        DatasetKind::Letkf,
        DatasetKind::Miranda,
        DatasetKind::HurricaneIsabel,
        DatasetKind::Jhtdb,
    ];

    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Nyx => "NYX",
            DatasetKind::Letkf => "LETKF",
            DatasetKind::Miranda => "Miranda",
            DatasetKind::HurricaneIsabel => "Hurricane ISABEL",
            DatasetKind::Jhtdb => "JHTDB",
            DatasetKind::MiniJhtdb => "mini-JHTDB",
        }
    }

    /// Grid extents in the paper (for the Table 1 harness).
    pub fn paper_shape(&self) -> Vec<usize> {
        match self {
            DatasetKind::Nyx => vec![512, 512, 512],
            DatasetKind::Letkf => vec![98, 1200, 1200],
            DatasetKind::Miranda => vec![256, 384, 384],
            DatasetKind::HurricaneIsabel => vec![100, 500, 500],
            DatasetKind::Jhtdb => vec![1024, 2048, 2048],
            DatasetKind::MiniJhtdb => vec![512, 1024, 1024],
        }
    }

    /// Scaled-down default extents for this reproduction, preserving each
    /// dataset's aspect ratio.
    pub fn default_shape(&self) -> Vec<usize> {
        match self {
            DatasetKind::Nyx => vec![48, 48, 48],
            DatasetKind::Letkf => vec![13, 96, 96],
            DatasetKind::Miranda => vec![32, 48, 48],
            DatasetKind::HurricaneIsabel => vec![16, 64, 64],
            DatasetKind::Jhtdb => vec![64, 64, 64],
            DatasetKind::MiniJhtdb => vec![32, 48, 48],
        }
    }

    /// Element type name per Table 1.
    pub fn dtype(&self) -> &'static str {
        match self {
            DatasetKind::Miranda => "f64",
            _ => "f32",
        }
    }

    /// Variable count per Table 1.
    pub fn num_variables(&self) -> usize {
        match self {
            DatasetKind::Nyx => 6,
            _ => 3,
        }
    }
}

/// One generated variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Variable name (e.g. `"velocity_x"`).
    pub name: String,
    /// Values as f64 (convert with [`Variable::as_f32`] for f32 datasets).
    pub data: Vec<f64>,
}

impl Variable {
    /// The values converted to f32 (the storage precision of most
    /// Table 1 datasets).
    pub fn as_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v as f32).collect()
    }
}

/// A generated dataset instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Which dataset this mimics.
    pub kind: DatasetKind,
    /// Grid extents used.
    pub shape: Vec<usize>,
    /// Variables in a stable order.
    pub variables: Vec<Variable>,
}

impl Dataset {
    /// Generate `kind` at its default (scaled) extents.
    pub fn generate(kind: DatasetKind, seed: u64) -> Self {
        Self::generate_with_shape(kind, &kind.default_shape(), seed)
    }

    /// Generate `kind` over explicit extents.
    pub fn generate_with_shape(kind: DatasetKind, shape: &[usize], seed: u64) -> Self {
        let mut variables = Vec::new();
        match kind {
            DatasetKind::Nyx => {
                variables.push(Variable {
                    name: "baryon_density".into(),
                    data: fields::lognormal_density(shape, seed, 1.2, 1.0),
                });
                variables.push(Variable {
                    name: "dark_matter_density".into(),
                    data: fields::lognormal_density(shape, seed ^ 0x10, 1.5, 0.8),
                });
                variables.push(Variable {
                    name: "temperature".into(),
                    data: fields::lognormal_density(shape, seed ^ 0x20, 0.6, 1e4),
                });
                for (i, axis) in ["x", "y", "z"].iter().enumerate() {
                    variables.push(Variable {
                        name: format!("velocity_{axis}"),
                        data: fields::velocity_component(shape, seed ^ (0x30 + i as u64))
                            .into_iter()
                            .map(|v| v * 1e3)
                            .collect(),
                    });
                }
            }
            DatasetKind::Letkf => {
                for m in 0..3 {
                    variables.push(Variable {
                        name: format!("member_{m}"),
                        data: fields::ensemble_field(shape, seed, m),
                    });
                }
            }
            DatasetKind::Miranda => {
                variables.push(Variable {
                    name: "density".into(),
                    data: fields::interface_field(shape, seed, 3, 150.0),
                });
                variables.push(Variable {
                    name: "pressure".into(),
                    data: fields::interface_field(shape, seed ^ 0x40, 2, 90.0),
                });
                variables.push(Variable {
                    name: "diffusivity".into(),
                    data: fields::interface_field(shape, seed ^ 0x50, 4, 200.0),
                });
            }
            DatasetKind::HurricaneIsabel => {
                variables.push(Variable {
                    name: "wind_speed".into(),
                    data: fields::vortex_field(shape, seed),
                });
                variables.push(Variable {
                    name: "pressure".into(),
                    data: fields::vortex_field(shape, seed ^ 0x60)
                        .into_iter()
                        .map(|v| 1000.0 - 2.0 * v)
                        .collect(),
                });
                variables.push(Variable {
                    name: "precipitation".into(),
                    data: fields::lognormal_density(shape, seed ^ 0x70, 0.9, 0.1),
                });
            }
            DatasetKind::Jhtdb | DatasetKind::MiniJhtdb => {
                for (i, axis) in ["x", "y", "z"].iter().enumerate() {
                    variables.push(Variable {
                        name: format!("velocity_{axis}"),
                        data: fields::velocity_component(shape, seed ^ (0x80 + i as u64)),
                    });
                }
            }
        }
        Dataset {
            kind,
            shape: shape.to_vec(),
            variables,
        }
    }

    /// Elements per variable.
    pub fn elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Total bytes at the dataset's native precision.
    pub fn native_bytes(&self) -> usize {
        let elem = if self.kind.dtype() == "f64" { 8 } else { 4 };
        self.elements() * elem * self.variables.len()
    }

    /// The velocity components (for QoI experiments), if present.
    pub fn velocity_triplet(&self) -> Option<[&Variable; 3]> {
        let find = |suffix: &str| self.variables.iter().find(|v| v.name.ends_with(suffix));
        match (find("_x"), find("_y"), find("_z")) {
            (Some(x), Some(y), Some(z)) => Some([x, y, z]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        assert_eq!(DatasetKind::Nyx.num_variables(), 6);
        assert_eq!(DatasetKind::Jhtdb.num_variables(), 3);
        assert_eq!(DatasetKind::Miranda.dtype(), "f64");
        assert_eq!(DatasetKind::Nyx.paper_shape(), vec![512, 512, 512]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::MiniJhtdb, 7);
        let b = Dataset::generate(DatasetKind::MiniJhtdb, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn variable_counts_respected() {
        for kind in DatasetKind::TABLE1 {
            let shape: Vec<usize> = kind.default_shape().iter().map(|&n| n.min(16)).collect();
            let d = Dataset::generate_with_shape(kind, &shape, 3);
            assert_eq!(d.variables.len(), kind.num_variables(), "{}", kind.name());
            for v in &d.variables {
                assert_eq!(v.data.len(), d.elements());
                assert!(v.data.iter().all(|x| x.is_finite()), "{}", v.name);
            }
        }
    }

    #[test]
    fn velocity_triplet_found_where_expected() {
        let jh = Dataset::generate_with_shape(DatasetKind::MiniJhtdb, &[8, 8, 8], 1);
        assert!(jh.velocity_triplet().is_some());
        let mi = Dataset::generate_with_shape(DatasetKind::Miranda, &[8, 8, 8], 1);
        assert!(mi.velocity_triplet().is_none());
    }

    #[test]
    fn nyx_velocity_scaled_to_km_s_range() {
        let d = Dataset::generate_with_shape(DatasetKind::Nyx, &[12, 12, 12], 2);
        let [vx, _, _] = d.velocity_triplet().unwrap();
        let max = vx.data.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 100.0, "velocities should be O(1e3), got max {max}");
    }

    #[test]
    fn native_bytes_accounts_dtype() {
        let mi = Dataset::generate_with_shape(DatasetKind::Miranda, &[8, 8, 8], 1);
        assert_eq!(mi.native_bytes(), 8 * 8 * 8 * 8 * 3);
        let ny = Dataset::generate_with_shape(DatasetKind::Nyx, &[8, 8, 8], 1);
        assert_eq!(ny.native_bytes(), 8 * 8 * 8 * 4 * 6);
    }
}
