//! Seeded synthetic field generators.
//!
//! All generators are built on random-phase spectral synthesis: a sum of
//! cosine modes with wavenumbers drawn across log-spaced shells and
//! amplitudes following a configurable power law. Slope ≈ −5/3 mimics the
//! Kolmogorov inertial range of JHTDB-like turbulence; steeper slopes give
//! the smoother LETKF/ISABEL-like fields; post-maps (exp, tanh layering,
//! vortex swirl) add the dataset-specific structure.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Parameters of one spectral synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    /// Grid extents (1–3 dims).
    pub shape: Vec<usize>,
    /// Number of random Fourier modes.
    pub modes: usize,
    /// Spectral amplitude slope `A(k) ∝ k^slope` (e.g. −5/3 − 1 for
    /// turbulence-like velocity components).
    pub slope: f64,
    /// Minimum and maximum wavenumber (cycles per domain).
    pub k_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl FieldSpec {
    /// Turbulence-like spec over `shape`.
    pub fn turbulent(shape: &[usize], seed: u64) -> Self {
        FieldSpec {
            shape: shape.to_vec(),
            modes: 96,
            slope: -5.0 / 3.0,
            k_range: (1.0, 32.0),
            seed,
        }
    }

    /// Smooth large-scale spec (weather/climate-like).
    pub fn smooth(shape: &[usize], seed: u64) -> Self {
        FieldSpec {
            shape: shape.to_vec(),
            modes: 48,
            slope: -3.0,
            k_range: (1.0, 12.0),
            seed,
        }
    }
}

struct Mode {
    k: [f64; 3],
    phase: f64,
    amp: f64,
}

fn draw_modes(spec: &FieldSpec) -> Vec<Mode> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let nd = spec.shape.len();
    let (k_lo, k_hi) = spec.k_range;
    let mut modes = Vec::with_capacity(spec.modes);
    for _ in 0..spec.modes {
        // Log-uniform shell radius, isotropic direction.
        let k_mag = k_lo * (k_hi / k_lo).powf(rng.gen::<f64>());
        let mut dir = [0.0f64; 3];
        loop {
            let mut norm = 0.0;
            for d in dir.iter_mut().take(nd) {
                *d = rng.gen::<f64>() * 2.0 - 1.0;
                norm += *d * *d;
            }
            if norm > 1e-6 && norm <= 1.0 {
                let inv = norm.sqrt().recip();
                for d in dir.iter_mut().take(nd) {
                    *d *= inv;
                }
                break;
            }
        }
        let k = [dir[0] * k_mag, dir[1] * k_mag, dir[2] * k_mag];
        modes.push(Mode {
            k,
            phase: rng.gen::<f64>() * std::f64::consts::TAU,
            amp: k_mag.powf(spec.slope),
        });
    }
    // Normalize so the field variance is O(1) independent of mode count.
    let energy: f64 = modes.iter().map(|m| m.amp * m.amp * 0.5).sum();
    let scale = energy.sqrt().recip();
    for m in &mut modes {
        m.amp *= scale;
    }
    modes
}

/// Synthesize the spectral field described by `spec`, row-major.
pub fn spectral_field(spec: &FieldSpec) -> Vec<f64> {
    let n: usize = spec.shape.iter().product();
    let modes = draw_modes(spec);
    let nd = spec.shape.len();
    let dims = {
        let mut d = [1usize; 3];
        d[..nd].copy_from_slice(&spec.shape);
        d
    };
    let inv = [
        1.0 / dims[0] as f64,
        1.0 / dims[1] as f64,
        1.0 / dims[2] as f64,
    ];
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|idx| {
            let z = idx % dims[2];
            let y = (idx / dims[2]) % dims[1];
            let x = idx / (dims[1] * dims[2]);
            let pos = [x as f64 * inv[0], y as f64 * inv[1], z as f64 * inv[2]];
            let mut acc = 0.0;
            for m in &modes {
                let phase = std::f64::consts::TAU
                    * (m.k[0] * pos[0] + m.k[1] * pos[1] + m.k[2] * pos[2])
                    + m.phase;
                acc += m.amp * phase.cos();
            }
            acc
        })
        .collect()
}

/// Lognormal density field (NYX-like baryon density): `ρ0 · exp(σ·g)`.
pub fn lognormal_density(shape: &[usize], seed: u64, sigma: f64, rho0: f64) -> Vec<f64> {
    let g = spectral_field(&FieldSpec::turbulent(shape, seed));
    g.into_par_iter()
        .map(|v| rho0 * (sigma * v).exp())
        .collect()
}

/// Mixing-layer field with sharp `tanh` interfaces (Miranda-like density).
pub fn interface_field(shape: &[usize], seed: u64, layers: usize, sharpness: f64) -> Vec<f64> {
    let perturb = spectral_field(&FieldSpec::smooth(shape, seed));
    let n: usize = shape.iter().product();
    let rows = shape[0];
    let row_elems = n / rows.max(1);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|idx| {
            let x = (idx / row_elems.max(1)) as f64 / rows as f64;
            let mut v = 1.0;
            for l in 1..=layers {
                let pos = l as f64 / (layers + 1) as f64 + 0.03 * perturb[idx];
                v += 0.5 * ((x - pos) * sharpness).tanh();
            }
            v + 0.02 * perturb[idx]
        })
        .collect()
}

/// Hurricane-like vortex field: swirl magnitude decaying from a moving
/// eye, on top of smooth background flow (ISABEL-like wind speed).
pub fn vortex_field(shape: &[usize], seed: u64) -> Vec<f64> {
    assert!(shape.len() >= 2, "vortex field needs at least 2 dims");
    let background = spectral_field(&FieldSpec::smooth(shape, seed ^ 0x5a5a));
    let n: usize = shape.iter().product();
    let mut dims = [1usize; 3];
    dims[..shape.len()].copy_from_slice(shape);
    // Eye drifts across the last-two dimensions with the leading dim
    // (time/altitude for 100×500×500 ISABEL-like grids).
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|idx| {
            let z = idx % dims[2];
            let y = (idx / dims[2]) % dims[1];
            let x = idx / (dims[1] * dims[2]);
            let t = x as f64 / dims[0] as f64;
            let ey = 0.35 + 0.3 * t;
            let ez = 0.5 + 0.15 * (t * std::f64::consts::TAU).sin();
            let dy = y as f64 / dims[1] as f64 - ey;
            let dz = z as f64 / dims[2] as f64 - ez;
            let r = (dy * dy + dz * dz).sqrt();
            // Rankine-like swirl profile.
            let rc = 0.05;
            let swirl = if r < rc { r / rc } else { (rc / r).powf(0.6) };
            30.0 * swirl + 3.0 * background[idx]
        })
        .collect()
}

/// Smooth ensemble-forecast field (LETKF-like): large-scale structure with
/// mild member-dependent perturbations.
pub fn ensemble_field(shape: &[usize], seed: u64, member: u64) -> Vec<f64> {
    let base = spectral_field(&FieldSpec::smooth(shape, seed));
    let pert = spectral_field(&FieldSpec::turbulent(shape, seed ^ (member + 1)));
    base.into_par_iter()
        .zip(pert.into_par_iter())
        .map(|(b, p)| 280.0 + 15.0 * b + 0.8 * p)
        .collect()
}

/// Turbulent velocity component (JHTDB-like): Kolmogorov-sloped spectrum,
/// unit-variance, one seed per component.
pub fn velocity_component(shape: &[usize], seed: u64) -> Vec<f64> {
    spectral_field(&FieldSpec::turbulent(shape, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_field_is_deterministic() {
        let spec = FieldSpec::turbulent(&[16, 16, 16], 42);
        let a = spectral_field(&spec);
        let b = spectral_field(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = spectral_field(&FieldSpec::turbulent(&[512], 1));
        let b = spectral_field(&FieldSpec::turbulent(&[512], 2));
        assert_ne!(a, b);
    }

    #[test]
    fn variance_is_order_one() {
        let f = spectral_field(&FieldSpec::turbulent(&[32, 32, 32], 7));
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        let var: f64 = f.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / f.len() as f64;
        assert!(var > 0.05 && var < 20.0, "variance {var}");
    }

    #[test]
    fn smooth_spec_is_smoother_than_turbulent() {
        // Mean squared difference of neighbors measures roughness.
        let rough = |f: &[f64]| -> f64 {
            f.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum::<f64>() / (f.len() - 1) as f64
        };
        let t = spectral_field(&FieldSpec::turbulent(&[4096], 3));
        let s = spectral_field(&FieldSpec::smooth(&[4096], 3));
        let (rt, rs) = (rough(&t), rough(&s));
        assert!(rs < rt, "smooth {rs} vs turbulent {rt}");
    }

    #[test]
    fn lognormal_density_is_positive_and_skewed() {
        let d = lognormal_density(&[24, 24, 24], 9, 1.0, 1.0);
        assert!(d.iter().all(|&v| v > 0.0));
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let median = {
            let mut s = d.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(
            mean > median,
            "lognormal mean {mean} must exceed median {median}"
        );
    }

    #[test]
    fn interface_field_has_sharp_gradients() {
        let f = interface_field(&[64, 16, 16], 5, 3, 120.0);
        let rows = 64;
        let row_elems = 16 * 16;
        let mut max_jump = 0.0f64;
        for x in 0..rows - 1 {
            let a = f[x * row_elems];
            let b = f[(x + 1) * row_elems];
            max_jump = max_jump.max((b - a).abs());
        }
        assert!(
            max_jump > 0.1,
            "expected sharp interface, max jump {max_jump}"
        );
    }

    #[test]
    fn vortex_field_peaks_near_eye() {
        let f = vortex_field(&[4, 64, 64], 11);
        let max = f.iter().cloned().fold(f64::MIN, f64::max);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        assert!(max > 2.0 * mean.abs().max(1.0), "max {max} mean {mean}");
    }

    #[test]
    fn ensemble_members_are_correlated_but_distinct() {
        let a = ensemble_field(&[32, 32], 1, 0);
        let b = ensemble_field(&[32, 32], 1, 1);
        assert_ne!(a, b);
        // Correlation through the shared base must be strong.
        let mean_a = a.iter().sum::<f64>() / a.len() as f64;
        let mean_b = b.iter().sum::<f64>() / b.len() as f64;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in a.iter().zip(&b) {
            cov += (x - mean_a) * (y - mean_b);
            va += (x - mean_a).powi(2);
            vb += (y - mean_b).powi(2);
        }
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.8, "correlation {corr}");
    }
}
