//! Error and rate metrics used across the experiment harness.

/// Maximum absolute (L∞) error between two fields.
///
/// # Panics
/// Panics on length mismatch.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "field length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square error.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "field length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB (`∞` for identical fields).
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    let range = value_range(a);
    let e = rmse(a, b);
    if e == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (range / e).log10()
}

/// Value range `max − min` of a field (0 for empty input).
pub fn value_range(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    hi - lo
}

/// Compression ratio `original / compressed`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    if compressed_bytes == 0 {
        return f64::INFINITY;
    }
    original_bytes as f64 / compressed_bytes as f64
}

/// Bitrate in bits per element.
pub fn bitrate(fetched_bytes: usize, elements: usize) -> f64 {
    if elements == 0 {
        return 0.0;
    }
    fetched_bytes as f64 * 8.0 / elements as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_fields_have_zero_error_infinite_psnr() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn linf_dominates_rmse() {
        let a = vec![0.0; 100];
        let mut b = a.clone();
        b[3] = 1.0;
        assert_eq!(max_abs_error(&a, &b), 1.0);
        assert!(rmse(&a, &b) < 1.0);
    }

    #[test]
    fn psnr_improves_with_smaller_error() {
        let a: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let noisy = |eps: f64| -> Vec<f64> {
            a.iter()
                .enumerate()
                .map(|(i, v)| v + if i % 2 == 0 { eps } else { -eps })
                .collect()
        };
        assert!(psnr(&a, &noisy(1e-4)) > psnr(&a, &noisy(1e-2)));
    }

    #[test]
    fn rate_helpers() {
        assert_eq!(compression_ratio(1000, 100), 10.0);
        assert_eq!(compression_ratio(1000, 0), f64::INFINITY);
        assert_eq!(bitrate(400, 100), 32.0);
        assert_eq!(bitrate(0, 0), 0.0);
    }

    #[test]
    fn value_range_basic() {
        assert_eq!(value_range(&[-2.0, 3.0, 0.5]), 5.0);
        assert_eq!(value_range(&[]), 0.0);
    }
}
