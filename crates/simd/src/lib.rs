//! # hpmdr-simd — runtime instruction-set detection and dispatch policy
//!
//! HP-MDR's bit-level stages (32×32 bit transpose, byte histogram,
//! Huffman accumulator packing, fixed-point quantization) map directly
//! onto 128/256-bit vector units, but refactored artifacts are a
//! portability contract: whatever instruction set runs the kernels, the
//! bytes must be identical. This crate owns the *policy* half of that
//! bargain — which ISA a process may use — while the kernels themselves
//! live next to the data structures they operate on (`hpmdr-bitplane`,
//! `hpmdr-lossless`, `hpmdr-mgard`) as explicit `*_with_isa` entry
//! points.
//!
//! [`Isa`] is decided **once**, at backend construction (see
//! `hpmdr-exec`'s `SimdBackend`), and then pinned: kernels receive the
//! pinned value and resolve their function pointers from it at kernel
//! entry, never per element. Detection layers, in priority order:
//!
//! 1. `HPMDR_FORCE_SCALAR` — any non-empty value other than `0` forces
//!    [`Isa::Scalar`], trumping everything else (the CI escape hatch).
//! 2. `HPMDR_SIMD` — `scalar`/`off`/`0` force scalar; `avx2` / `neon`
//!    request that ISA (silently degrading to scalar when the CPU lacks
//!    it, so test matrices run unchanged everywhere); `auto`, empty, or
//!    unset defer to hardware detection.
//! 3. Hardware detection — `is_x86_feature_detected!("avx2")` on
//!    x86_64, NEON (baseline, but still verified) on aarch64.
//!
//! SSE2 needs no detection tier of its own: it is part of the x86_64
//! baseline, so the "scalar" kernels are already compiled against it and
//! the compiler auto-vectorizes the straight-line reference loops.
//! Every kernel keeps its scalar fallback compiled and reachable on
//! every target — forcing [`Isa::Scalar`] is always valid.

use std::fmt;

/// Instruction set a pipeline's kernels are allowed to use.
///
/// The variant set is deliberately small: one tier per implemented
/// kernel family. Adding an ISA means adding a variant here, a
/// detection arm in [`Isa::best_available`], and kernel arms in the
/// owning crates' dispatch functions (see ARCHITECTURE.md, "SIMD
/// backend").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Isa {
    /// Portable reference kernels; always available, always compiled.
    #[default]
    Scalar,
    /// 256-bit AVX2 kernels (x86_64; implies SSE2/SSSE3/SSE4).
    Avx2,
    /// 128-bit NEON kernels (aarch64 baseline).
    Neon,
}

impl Isa {
    /// Best ISA the *hardware* supports, ignoring environment overrides.
    ///
    /// Use this for microbenchmarks that compare scalar and SIMD paths
    /// explicitly; production construction goes through [`Isa::detect`].
    pub fn best_available() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return Isa::Neon;
            }
        }
        Isa::Scalar
    }

    /// Resolve the ISA to pin, honoring the `HPMDR_FORCE_SCALAR` and
    /// `HPMDR_SIMD` environment overrides described in the crate docs.
    ///
    /// The environment is re-read on every call (construction-time cost
    /// only; nothing here is cached), so tests can flip the override
    /// between backend constructions without process-global state.
    pub fn detect() -> Isa {
        if let Ok(v) = std::env::var("HPMDR_FORCE_SCALAR") {
            if !v.is_empty() && v != "0" {
                return Isa::Scalar;
            }
        }
        match std::env::var("HPMDR_SIMD").as_deref() {
            Ok("scalar") | Ok("off") | Ok("0") => Isa::Scalar,
            Ok("avx2") => Isa::Avx2.or_scalar(),
            Ok("neon") => Isa::Neon.or_scalar(),
            _ => Isa::best_available(),
        }
    }

    /// Whether this ISA can run on the current CPU. [`Isa::Scalar`] is
    /// always available.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// This ISA when available on the current CPU, [`Isa::Scalar`]
    /// otherwise — the degradation rule every construction path applies
    /// so a pinned ISA is *always* runnable.
    pub fn or_scalar(self) -> Isa {
        if self.is_available() {
            self
        } else {
            Isa::Scalar
        }
    }

    /// Short lowercase name (`"scalar"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Isa::Scalar.is_available());
        assert_eq!(Isa::Scalar.or_scalar(), Isa::Scalar);
    }

    #[test]
    fn best_available_is_available() {
        let best = Isa::best_available();
        assert!(best.is_available(), "{best} must be runnable");
        assert_eq!(best.or_scalar(), best);
    }

    #[test]
    fn unavailable_isas_degrade_to_scalar() {
        for isa in [Isa::Avx2, Isa::Neon] {
            if !isa.is_available() {
                assert_eq!(isa.or_scalar(), Isa::Scalar);
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Neon.name(), "neon");
        assert_eq!(format!("{}", Isa::Avx2), "avx2");
    }

    #[test]
    fn default_is_scalar() {
        assert_eq!(Isa::default(), Isa::Scalar);
    }
}
