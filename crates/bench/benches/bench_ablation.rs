//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! locality-block size sweep (simulated), hybrid merge-group size `m`,
//! L2 correction on/off, and midpoint reconstruction on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpmdr_bitplane::{decode_prefix, encode, DesignKind, Layout, Reconstruction};
use hpmdr_core::{refactor, RefactorConfig};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_device::{CostModel, DeviceConfig};
use hpmdr_lossless::HybridConfig;

/// Locality-block size sweep: the paper notes finding the right block is
/// this design's key tuning knob (small blocks lose ILP, large blocks lose
/// cache mitigation). Evaluated through the cost model, wrapped in
/// criterion so the sweep is part of `cargo bench` output.
fn ablation_block_size(c: &mut Criterion) {
    let cfg = DeviceConfig::h100_like();
    let n = 1usize << 24;
    let mut g = c.benchmark_group("ablation_block_size");
    for m in [32usize, 64, 128, 256] {
        g.bench_with_input(BenchmarkId::new("sim_time", m), &m, |b, &m| {
            b.iter(|| {
                let counters =
                    DesignKind::LocalityBlock { block_elems: m }.encode_counters(&cfg, n, 32, 4);
                CostModel::kernel_time(&cfg, &counters)
            })
        });
    }
    g.finish();
    // Print the sweep itself once for the record.
    println!("\nlocality-block simulated encode throughput (H100-like, 2^24 elems):");
    for m in [32usize, 64, 128, 256, 512] {
        let counters = DesignKind::LocalityBlock { block_elems: m }.encode_counters(&cfg, n, 32, 4);
        println!(
            "  block {m:>4}: {:>7.1} GB/s",
            CostModel::throughput_gbps(&cfg, &counters, n * 4)
        );
    }
}

/// Hybrid merge-group size `m`: larger groups amortize codec headers but
/// coarsen the retrieval granularity.
fn ablation_group_size(c: &mut Criterion) {
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &[32, 32, 32], 9);
    let data = ds.variables[0].as_f32();
    let mut g = c.benchmark_group("ablation_group_size");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for m in [1usize, 2, 4, 8] {
        let cfg = RefactorConfig {
            hybrid: HybridConfig {
                group_size: m,
                ..HybridConfig::default()
            },
            ..RefactorConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("refactor", m), &cfg, |b, cfg| {
            b.iter(|| refactor(&data, &ds.shape, cfg))
        });
    }
    g.finish();
}

/// MGARD L2 correction on/off: correction costs tridiagonal solves per
/// line but buys reconstruction quality at truncated precision.
fn ablation_correction(c: &mut Criterion) {
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &[48, 48, 48], 9);
    let data = ds.variables[0].as_f32();
    let mut g = c.benchmark_group("ablation_correction");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for correction in [true, false] {
        let cfg = RefactorConfig {
            correction,
            ..RefactorConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("refactor", correction), &cfg, |b, cfg| {
            b.iter(|| refactor(&data, &ds.shape, cfg))
        });
    }
    g.finish();
}

/// Midpoint vs truncation reconstruction (decode-side only).
fn ablation_midpoint(c: &mut Criterion) {
    let data: Vec<f32> = (0..1 << 18)
        .map(|i| ((i % 511) as f32 * 0.11).sin())
        .collect();
    let chunk = encode(&data, 32, Layout::Interleaved32);
    let mut g = c.benchmark_group("ablation_midpoint");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for (name, recon) in [
        ("truncate", Reconstruction::Truncate),
        ("midpoint", Reconstruction::Midpoint),
    ] {
        g.bench_function(name, |b| b.iter(|| decode_prefix::<f32>(&chunk, 12, recon)));
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_block_size, ablation_group_size, ablation_correction, ablation_midpoint
);
criterion_main!(benches);
