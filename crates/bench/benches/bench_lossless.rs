//! Criterion microbenchmarks of the lossless stage: Huffman, RLE, and the
//! hybrid selector over representative bitplane-group payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpmdr_lossless::{huffman, rle, Codec, HybridCompressor, HybridConfig};

/// High-order-plane-like payload: heavily zero-dominated.
fn sparse_payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| if i % 37 == 0 { (i % 7 + 1) as u8 } else { 0 })
        .collect()
}

/// Low-order-plane-like payload: near-random bits.
fn noisy_payload(n: usize) -> Vec<u8> {
    let mut s = 0x12345u32;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            (s >> 24) as u8
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let n = 1usize << 20;
    let payloads = [("sparse", sparse_payload(n)), ("noisy", noisy_payload(n))];
    let mut g = c.benchmark_group("lossless_compress");
    g.throughput(Throughput::Bytes(n as u64));
    for (name, data) in &payloads {
        g.bench_with_input(BenchmarkId::new("huffman", name), data, |b, d| {
            b.iter(|| huffman::compress(d))
        });
        g.bench_with_input(BenchmarkId::new("rle", name), data, |b, d| {
            b.iter(|| rle::compress(d))
        });
        let hybrid = HybridCompressor::new(HybridConfig::with_rc(1.0));
        g.bench_with_input(BenchmarkId::new("hybrid_rc1", name), data, |b, d| {
            b.iter(|| hybrid.compress(d))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("lossless_decompress");
    g.throughput(Throughput::Bytes(n as u64));
    for (name, data) in &payloads {
        let hc = huffman::compress(data);
        let rc = rle::compress(data);
        g.bench_with_input(BenchmarkId::new("huffman", name), &hc, |b, d| {
            b.iter(|| huffman::decompress(d))
        });
        g.bench_with_input(BenchmarkId::new("rle", name), &rc, |b, d| {
            b.iter(|| rle::decompress(d))
        });
    }
    g.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let n = 1usize << 20;
    let data = sparse_payload(n);
    let mut g = c.benchmark_group("lossless_estimate");
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("huffman_cr", |b| {
        b.iter(|| hpmdr_lossless::estimate_huffman_cr(&data))
    });
    g.bench_function("rle_cr", |b| {
        b.iter(|| hpmdr_lossless::estimate_rle_cr(&data))
    });
    let hybrid = HybridCompressor::new(HybridConfig::with_rc(1.0));
    g.bench_function("select", |b| {
        b.iter(|| {
            let c = hybrid.select(&data);
            assert_ne!(c, Codec::Rle); // sparse payload routes to Huffman
            c
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codecs, bench_estimators
);
criterion_main!(benches);
