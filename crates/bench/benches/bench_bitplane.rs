//! Criterion microbenchmarks of the native bitplane codecs (the §4 claim
//! carriers): encode/decode wall-clock per layout and size, plus prefix
//! decoding cost as a function of retained planes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpmdr_bitplane::{decode_prefix, encode, Layout, Reconstruction};

fn field(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i % 8191) as f32 * 0.173).sin() * 3.0)
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitplane_encode");
    for &n in &[1usize << 16, 1 << 20] {
        let data = field(n);
        g.throughput(Throughput::Bytes((n * 4) as u64));
        for layout in [Layout::Natural, Layout::Interleaved32] {
            g.bench_with_input(
                BenchmarkId::new(format!("{layout:?}"), n),
                &data,
                |b, data| b.iter(|| encode(data, 32, layout)),
            );
        }
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitplane_decode");
    let n = 1usize << 20;
    let data = field(n);
    g.throughput(Throughput::Bytes((n * 4) as u64));
    for layout in [Layout::Natural, Layout::Interleaved32] {
        let chunk = encode(&data, 32, layout);
        g.bench_with_input(
            BenchmarkId::new(format!("{layout:?}_full"), n),
            &chunk,
            |b, chunk| b.iter(|| decode_prefix::<f32>(chunk, 32, Reconstruction::Truncate)),
        );
    }
    g.finish();
}

fn bench_prefix_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitplane_prefix");
    let n = 1usize << 20;
    let data = field(n);
    let chunk = encode(&data, 32, Layout::Interleaved32);
    g.throughput(Throughput::Bytes((n * 4) as u64));
    for k in [4usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("planes", k), &k, |b, &k| {
            b.iter(|| decode_prefix::<f32>(&chunk, k, Reconstruction::Truncate))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode, bench_decode, bench_prefix_scaling
);
criterion_main!(benches);
