//! Chunked-domain benchmarks: chunked vs monolithic refactoring, and the
//! byte economics of region-of-interest retrieval.
//!
//! The ROI section prints a selectivity report comparing the bytes an
//! ROI query fetches against a full-domain retrieval at the same error
//! bound — the acceptance claim of the chunked layer (an ROI query over
//! a 512³-scale field must fetch strictly fewer bytes). Set
//! `HPMDR_BENCH_EXTENT=512` for the full-size run; the default keeps CI
//! and laptops in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpmdr_core::chunked::{refactor_chunked_with, ChunkedConfig};
use hpmdr_core::roi::{Region, RoiPlan, RoiRequest};
use hpmdr_core::storage::{write_chunked_store, ChunkedStoreReader};
use hpmdr_core::{refactor_with, ExecCtx, ParallelBackend, RefactorConfig, ScalarBackend};
use hpmdr_datasets::{uniform_queries, Dataset, DatasetKind};

/// Grid extent per dimension. Defaults to a laptop-friendly 96³; set
/// `HPMDR_BENCH_EXTENT=512` for the full 512³-scale acceptance run.
fn bench_extent() -> usize {
    std::env::var("HPMDR_BENCH_EXTENT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
        .max(8)
}

/// Samples per benchmark (`HPMDR_BENCH_SAMPLES`, default 10). Full-size
/// runs on slow hosts can drop this to keep wall-clock bounded.
fn bench_samples() -> usize {
    std::env::var("HPMDR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

fn chunk_extent_for(e: usize) -> usize {
    // ~4x4x4 chunks per domain at every scale, and deliberately not a
    // divisor of typical extents (exercises clipped boundary chunks).
    (e / 4 + 1).max(8)
}

/// Monolithic vs chunked refactoring on both backends: the chunk grid
/// must not cost throughput, and gives ParallelBackend chunk-level
/// parallelism on top of its in-chunk fan-out.
fn bench_chunked_refactor(c: &mut Criterion) {
    let e = bench_extent();
    let shape = vec![e, e, e];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, 5);
    let data = ds.variables[0].as_f32();
    let ctx = ExecCtx::default();
    let cfg = RefactorConfig::default();
    let ccfg = ChunkedConfig {
        chunk_extent: vec![chunk_extent_for(e); 3],
        refactor: cfg.clone(),
    };

    let mut g = c.benchmark_group("chunked_refactor");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    g.bench_function(BenchmarkId::new("monolithic_scalar", e), |b| {
        let backend = ScalarBackend::new();
        b.iter(|| refactor_with(&data, &shape, &cfg, &backend, &ctx))
    });
    g.bench_function(BenchmarkId::new("chunked_scalar", e), |b| {
        let backend = ScalarBackend::new();
        b.iter(|| refactor_chunked_with(&data, &shape, &ccfg, &backend, &ctx))
    });
    g.bench_function(BenchmarkId::new("chunked_parallel", e), |b| {
        let backend = ParallelBackend::new();
        b.iter(|| refactor_chunked_with(&data, &shape, &ccfg, &backend, &ctx))
    });
    g.finish();
}

/// ROI retrieval through the sharded store at several selectivities,
/// reporting fetched bytes vs the full-domain fetch at the same bound.
fn bench_roi_selectivity(c: &mut Criterion) {
    let e = bench_extent();
    let shape = vec![e, e, e];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, 5);
    let data = ds.variables[0].as_f32();
    let ctx = ExecCtx::default();
    let ccfg = ChunkedConfig {
        chunk_extent: vec![chunk_extent_for(e); 3],
        refactor: RefactorConfig::default(),
    };
    let backend = ParallelBackend::new();
    let cr = refactor_chunked_with(&data, &shape, &ccfg, &backend, &ctx);

    let dir = std::env::temp_dir().join(format!("hpmdr_bench_roi_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_chunked_store(&cr, &dir).expect("bench store writes");

    let eb = 1e-3 * cr.value_range();
    let full_plan = RoiPlan::for_request(&cr, &RoiRequest::new(Region::whole(&shape), eb))
        .expect("full-domain plan");
    let full_bytes = full_plan.fetch_bytes(&cr);

    let mut g = c.benchmark_group("roi_retrieval");
    for selectivity in [0.001f64, 0.01, 0.1] {
        let query = &uniform_queries(&shape, selectivity, 1, 42)[0];
        let region = Region::new(&query.start, &query.extent);
        let req = RoiRequest::new(region, eb);
        let plan = RoiPlan::for_request(&cr, &req).expect("roi plan");
        let roi_bytes = plan.fetch_bytes(&cr);
        println!(
            "roi_selectivity {selectivity:>6}: {roi_bytes} bytes over {} chunks \
             vs full-domain {full_bytes} bytes over {} chunks ({:.2}%)",
            plan.num_chunks(),
            full_plan.num_chunks(),
            100.0 * roi_bytes as f64 / full_bytes as f64,
        );
        // The acceptance claim: an ROI query fetches strictly fewer
        // bytes than full-domain retrieval at the same error bound.
        assert!(
            roi_bytes < full_bytes,
            "roi fetched {roi_bytes} >= full {full_bytes}"
        );

        // Open once: manifest parsing is a per-archive cost, not a
        // per-query one (a service keeps the reader resident).
        let reader = ChunkedStoreReader::open(&dir).expect("store opens");
        g.throughput(Throughput::Bytes((req.region.len() * 4) as u64));
        g.bench_with_input(
            BenchmarkId::new("store_roi", format!("{selectivity}")),
            &req,
            |b, req| {
                b.iter(|| {
                    reader
                        .retrieve_roi_with::<f32, _>(req, &backend, &ctx)
                        .expect("roi retrieves")
                })
            },
        );
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(bench_samples());
    targets = bench_chunked_refactor, bench_roi_selectivity
);
criterion_main!(benches);
