//! Criterion benchmarks of the end-to-end refactor/retrieve paths and the
//! pipeline modes (wall-clock on the host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpmdr_core::pipeline::{refactor_pipeline, refactor_pipeline_with, PipelineMode};
use hpmdr_core::{
    refactor, refactor_with, ExecCtx, ParallelBackend, RefactorConfig, RetrievalPlan,
    RetrievalSession, ScalarBackend,
};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_device::{Device, DeviceConfig};
use std::sync::Arc;

fn bench_refactor(c: &mut Criterion) {
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &[48, 48, 48], 5);
    let data = ds.variables[0].as_f32();
    let bytes = (data.len() * 4) as u64;
    let mut g = c.benchmark_group("refactor");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("jhtdb_48cubed", |b| {
        b.iter(|| refactor(&data, &ds.shape, &RefactorConfig::default()))
    });
    g.finish();
}

fn bench_retrieve(c: &mut Criterion) {
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &[48, 48, 48], 5);
    let data = ds.variables[0].as_f32();
    let refactored = refactor(&data, &ds.shape, &RefactorConfig::default());
    let mut g = c.benchmark_group("retrieve");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for rel in [1e-2f64, 1e-4, 1e-6] {
        let eb = rel * refactored.value_range;
        g.bench_with_input(
            BenchmarkId::new("to_tolerance", format!("{rel:.0e}")),
            &eb,
            |b, &eb| {
                b.iter(|| {
                    let (plan, _) = RetrievalPlan::for_error(&refactored, eb);
                    let mut sess = RetrievalSession::new(&refactored);
                    sess.refine_to(&plan);
                    sess.reconstruct::<f32>()
                })
            },
        );
    }
    g.finish();
}

fn bench_pipeline_modes(c: &mut Criterion) {
    let shape = vec![64usize, 48, 48];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, 5);
    let data = Arc::new(ds.variables[0].as_f32());
    let cfg = RefactorConfig::default();
    let tile_rows = 16;
    let tile_bytes = tile_rows * shape[1] * shape[2] * 4 + 4096;
    let device = Device::new(DeviceConfig::h100_like(), tile_bytes, 3);
    let mut g = c.benchmark_group("pipeline_mode");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for (name, mode) in [
        ("sequential", PipelineMode::Sequential),
        ("overlapped", PipelineMode::Overlapped),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| refactor_pipeline(data.clone(), &shape, &cfg, &device, mode, tile_rows))
        });
    }
    g.finish();
}

/// Grid extent per dimension for the backend comparison. Defaults to a
/// laptop-friendly 160³; set `HPMDR_BENCH_EXTENT=512` for the full
/// 512³-element acceptance run on a multi-core host.
fn backend_bench_extent() -> usize {
    std::env::var("HPMDR_BENCH_EXTENT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(160)
        .max(8) // zero/tiny extents have no valid hierarchy
}

/// ScalarBackend vs ParallelBackend on the same refactoring workload —
/// the executor-layer speedup claim. Artifacts are bit-identical (see
/// tests/tests/backend_equivalence.rs); only wall-clock may differ, and
/// on a multi-core host the parallel backend must win.
fn bench_backends(c: &mut Criterion) {
    let e = backend_bench_extent();
    let shape = vec![e, e, e];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, 5);
    let data = ds.variables[0].as_f32();
    let cfg = RefactorConfig::default();
    let ctx = ExecCtx::default();
    let mut g = c.benchmark_group("backend_refactor");
    g.throughput(Throughput::Bytes((data.len() * 4) as u64));
    g.bench_function(BenchmarkId::new("scalar", e), |b| {
        let backend = ScalarBackend::new();
        b.iter(|| refactor_with(&data, &shape, &cfg, &backend, &ctx))
    });
    g.bench_function(BenchmarkId::new("parallel", e), |b| {
        let backend = ParallelBackend::new();
        b.iter(|| refactor_with(&data, &shape, &cfg, &backend, &ctx))
    });
    g.finish();

    // The same comparison through the overlapped device pipeline: backend
    // kernels scheduled on the compute engine, copies on the DMA engines.
    let tile_rows = (e / 8).max(1);
    let tile_bytes = tile_rows * shape[1] * shape[2] * 4 + 4096;
    let device = Device::new(DeviceConfig::h100_like(), tile_bytes, 3);
    let arc_data = Arc::new(data);
    let mut g = c.benchmark_group("backend_pipeline");
    g.throughput(Throughput::Bytes((arc_data.len() * 4) as u64));
    g.bench_function(BenchmarkId::new("scalar_overlapped", e), |b| {
        b.iter(|| {
            refactor_pipeline_with(
                arc_data.clone(),
                &shape,
                &cfg,
                &device,
                PipelineMode::Overlapped,
                tile_rows,
                ScalarBackend::new(),
            )
        })
    });
    g.bench_function(BenchmarkId::new("parallel_overlapped", e), |b| {
        b.iter(|| {
            refactor_pipeline_with(
                arc_data.clone(),
                &shape,
                &cfg,
                &device,
                PipelineMode::Overlapped,
                tile_rows,
                ParallelBackend::new(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refactor, bench_retrieve, bench_pipeline_modes, bench_backends
);
criterion_main!(benches);
