//! Table rendering and machine-readable result output.

use serde::Serialize;
use std::path::Path;

/// A fixed-width text table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with `headers`.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{c:>w$}  ", w = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            line(r);
        }
    }
}

/// Write `value` as pretty JSON under `results/<name>.json` (creating the
/// directory), so EXPERIMENTS.md numbers are regenerable.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // read-only checkout: stdout output still has everything
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, json);
    }
}

/// Format a float with engineering-friendly precision.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert!(std::panic::catch_unwind(move || {
            t.row(&["only-one".into()]);
        })
        .is_err());
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(0.00123), "1.230e-3");
    }
}
