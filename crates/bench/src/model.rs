//! Modeled GPU stage durations for the pipeline and scaling studies.
//!
//! The discrete-event replays of Figures 9, 10, 12, and 14 need per-stage
//! durations on the modeled devices. Encode/decode kernels come straight
//! from the warp cost model ([`hpmdr_device::CostModel`] over
//! [`hpmdr_bitplane::DesignKind`] closed-form counters); the remaining
//! stages are modeled as memory-bound passes with efficiency factors
//! stated here as named constants:
//!
//! * multilevel (re)decomposition — GPU-MGARD is memory-bound; each level
//!   touches the active grid ~3× per dimension, geometric series over
//!   levels ≈ a constant number of full-array passes.
//! * hybrid lossless — parallel histogram + encode passes; entropy coding
//!   sustains a small fraction of HBM bandwidth on GPUs (single-digit
//!   percent), consistent with published GPU Huffman/RLE throughputs.
//! * QoI estimation — one fused pass over all variables.

use hpmdr_bitplane::DesignKind;
use hpmdr_core::pipeline::StageTimes;
use hpmdr_device::{CostModel, DeviceConfig};

/// Full-array memory passes consumed by one multilevel decomposition
/// (3 axis passes per level, level sizes a geometric series, read+write).
pub const MGARD_PASSES: f64 = 9.0;

/// Fraction of device memory bandwidth sustained by the hybrid lossless
/// *compression* stage on GPUs (histogram + estimate + encode).
pub const LOSSLESS_COMPRESS_EFF: f64 = 0.006;

/// Fraction sustained by hybrid lossless *decompression* on GPUs.
pub const LOSSLESS_DECOMPRESS_EFF: f64 = 0.012;

/// CPUs run entropy coding at a much higher fraction of their (much
/// lower) memory bandwidth — branchy bit-serial work is what they are
/// good at. This asymmetry is why the paper's kernel-level GPU speedup
/// (10.4×) is far below the raw bandwidth ratio of the two node types.
pub const LOSSLESS_COMPRESS_EFF_CPU: f64 = 0.08;
/// CPU decompression bandwidth fraction.
pub const LOSSLESS_DECOMPRESS_EFF_CPU: f64 = 0.22;

/// Lossless compression efficiency for a device's architecture.
pub fn lossless_compress_eff(cfg: &DeviceConfig) -> f64 {
    match cfg.arch {
        hpmdr_device::Arch::Cpu => LOSSLESS_COMPRESS_EFF_CPU,
        _ => LOSSLESS_COMPRESS_EFF,
    }
}

/// Lossless decompression efficiency for a device's architecture.
pub fn lossless_decompress_eff(cfg: &DeviceConfig) -> f64 {
    match cfg.arch {
        hpmdr_device::Arch::Cpu => LOSSLESS_DECOMPRESS_EFF_CPU,
        _ => LOSSLESS_DECOMPRESS_EFF,
    }
}

/// Ops per element of the fused QoI-estimate kernel (interval arithmetic
/// for `V_total` plus the max-reduction).
pub const QOI_OPS_PER_ELEM: f64 = 24.0;

/// Modeled refactoring stage times for one tile of `elems` elements of
/// `elem_bytes` bytes, emitting `out_bytes` of compressed stream.
pub fn refactor_stage_times(
    cfg: &DeviceConfig,
    elems: usize,
    elem_bytes: usize,
    planes: usize,
    out_bytes: usize,
) -> StageTimes {
    let bytes = elems * elem_bytes;
    let decompose = MGARD_PASSES * cfg.mem_time(bytes);
    let enc = DesignKind::RegisterBlock.encode_counters(cfg, elems, planes, elem_bytes);
    let encode = CostModel::kernel_time(cfg, &enc);
    // Planes (plus sign) are what the lossless stage consumes.
    let plane_bytes = elems / 8 * (planes + 1);
    let lossless = plane_bytes as f64 / (cfg.mem_bw_gbps * 1e9 * lossless_compress_eff(cfg));
    StageTimes {
        h2d: cfg.link_time(bytes),
        compute: decompose + encode + lossless,
        d2h: cfg.link_time(out_bytes),
    }
}

/// Modeled reconstruction stage times for one tile: fetch `in_bytes` of
/// compressed planes, decode a `k`-plane prefix, recompose.
pub fn reconstruct_stage_times(
    cfg: &DeviceConfig,
    elems: usize,
    elem_bytes: usize,
    k_planes: usize,
    in_bytes: usize,
) -> StageTimes {
    let bytes = elems * elem_bytes;
    let dec = DesignKind::RegisterBlock.decode_counters(cfg, elems, k_planes, elem_bytes);
    let decode = CostModel::kernel_time(cfg, &dec);
    let recompose = MGARD_PASSES * cfg.mem_time(bytes);
    let plane_bytes = elems / 8 * (k_planes + 1);
    let lossless = plane_bytes as f64 / (cfg.mem_bw_gbps * 1e9 * lossless_decompress_eff(cfg));
    StageTimes {
        h2d: cfg.link_time(in_bytes),
        compute: lossless + decode + recompose,
        d2h: cfg.link_time(bytes),
    }
}

/// Modeled kernel time of one full QoI-controlled retrieval: per
/// iteration, each variable is decoded+recomposed and the QoI supremum is
/// estimated. `recompose_elements` counts element-recompositions summed
/// over iterations (reported by the retrieval outcome), `fetched_bytes`
/// the compressed planes decoded, `avg_planes` the typical plane prefix.
pub fn qoi_loop_time(
    cfg: &DeviceConfig,
    recompose_elements: u64,
    fetched_bytes: usize,
    elem_bytes: usize,
    avg_planes: usize,
) -> f64 {
    let recompose = MGARD_PASSES * cfg.mem_time(recompose_elements as usize * elem_bytes);
    let dec = DesignKind::RegisterBlock.decode_counters(
        cfg,
        recompose_elements as usize,
        avg_planes,
        elem_bytes,
    );
    let decode = CostModel::kernel_time(cfg, &dec);
    let lossless = fetched_bytes as f64 / (cfg.mem_bw_gbps * 1e9 * lossless_decompress_eff(cfg));
    let qoi = QOI_OPS_PER_ELEM * recompose_elements as f64 / cfg.peak_ips();
    recompose + decode + lossless + qoi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_dominates_copies_for_large_tiles() {
        let cfg = DeviceConfig::h100_like();
        let st = refactor_stage_times(&cfg, 1 << 24, 4, 32, 1 << 25);
        assert!(st.compute > st.h2d, "{st:?}");
        assert!(st.compute > st.d2h);
        assert!(st.compute < 1.0, "plausible magnitude: {st:?}");
    }

    #[test]
    fn reconstruction_scales_with_plane_prefix() {
        let cfg = DeviceConfig::mi250x_like();
        let small = reconstruct_stage_times(&cfg, 1 << 22, 4, 8, 1 << 22);
        let large = reconstruct_stage_times(&cfg, 1 << 22, 4, 32, 1 << 24);
        assert!(large.compute > small.compute);
        assert!(large.h2d > small.h2d);
    }

    #[test]
    fn qoi_loop_time_grows_with_iteration_work() {
        let cfg = DeviceConfig::mi250x_like();
        let t1 = qoi_loop_time(&cfg, 1 << 24, 1 << 24, 4, 16);
        let t2 = qoi_loop_time(&cfg, 1 << 26, 1 << 25, 4, 16);
        assert!(t2 > t1);
    }
}
