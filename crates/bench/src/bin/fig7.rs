//! Figure 7: encode/decode throughput of the three parallelization
//! designs across input sizes on both device models, plus the native CPU
//! wall-clock of the two stream layouts as a sanity column.
//!
//! Paper shape targets (large inputs): register block ≈ 2.1× locality
//! block (encode) and 4.7–8.3× (decode); locality block ≈ 1.4× register
//! shuffling (encode) and 3.2–6.6× (decode).

use hpmdr_bench::Table;
use hpmdr_bitplane::{encode, DesignKind, Layout, ShuffleInstr};
use hpmdr_device::{CostModel, DeviceConfig};
use std::time::Instant;

fn wall_encode(layout: Layout, n: usize) -> f64 {
    let data: Vec<f32> = (0..n)
        .map(|i| ((i % 4093) as f32 * 0.37).sin() * 2.0)
        .collect();
    let t0 = Instant::now();
    let chunk = encode(&data, 32, layout);
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&chunk);
    n as f64 * 4.0 / dt / 1e9
}

fn main() {
    let designs = [
        ("locality-block", DesignKind::locality_default()),
        (
            "reg-shuffle",
            DesignKind::RegisterShuffle(ShuffleInstr::Ballot),
        ),
        ("register-block", DesignKind::RegisterBlock),
    ];
    let sizes: Vec<usize> = (16..=26).step_by(2).map(|p| 1usize << p).collect();
    let mut json = Vec::new();

    for cfg in [DeviceConfig::h100_like(), DeviceConfig::mi250x_like()] {
        // Pick the best-performing shuffle instruction per device, as the
        // paper does for the rest of its evaluation.
        let best_shuffle = ShuffleInstr::ALL
            .into_iter()
            .filter(|&i| DesignKind::RegisterShuffle(i).supported_on(&cfg))
            .min_by(|&a, &b| {
                let ta = CostModel::kernel_time(
                    &cfg,
                    &DesignKind::RegisterShuffle(a).encode_counters(&cfg, 1 << 24, 32, 4),
                );
                let tb = CostModel::kernel_time(
                    &cfg,
                    &DesignKind::RegisterShuffle(b).encode_counters(&cfg, 1 << 24, 32, 4),
                );
                ta.total_cmp(&tb)
            })
            .expect("some instruction supported");

        for dir in ["encode", "decode"] {
            let mut t = Table::new(
                &format!("Figure 7: {dir} throughput (GB/s), {}", cfg.name),
                &[
                    "elements",
                    "locality-block",
                    "reg-shuffle",
                    "register-block",
                ],
            );
            for &n in &sizes {
                let mut cells = vec![format!("2^{}", n.trailing_zeros())];
                for (name, d) in designs {
                    let d = if name == "reg-shuffle" {
                        DesignKind::RegisterShuffle(best_shuffle)
                    } else {
                        d
                    };
                    let c = if dir == "encode" {
                        d.encode_counters(&cfg, n, 32, 4)
                    } else {
                        d.decode_counters(&cfg, n, 32, 4)
                    };
                    let gbps = CostModel::throughput_gbps(&cfg, &c, n * 4);
                    cells.push(format!("{gbps:.1}"));
                    json.push(serde_json::json!({
                        "device": cfg.name, "design": name, "dir": dir,
                        "elements": n, "gbps": gbps,
                    }));
                }
                t.row(&cells);
            }
            t.print();
        }

        // Summary factors at the largest size.
        let n = 1 << 26;
        let time = |d: DesignKind, enc: bool| {
            let c = if enc {
                d.encode_counters(&cfg, n, 32, 4)
            } else {
                d.decode_counters(&cfg, n, 32, 4)
            };
            CostModel::kernel_time(&cfg, &c)
        };
        let lb = DesignKind::locality_default();
        let rs = DesignKind::RegisterShuffle(best_shuffle);
        let rb = DesignKind::RegisterBlock;
        println!(
            "\n{}: encode rb/lb = {:.1}x, lb/rs = {:.1}x | decode rb/lb = {:.1}x, lb/rs = {:.1}x",
            cfg.name,
            time(lb, true) / time(rb, true),
            time(rs, true) / time(lb, true),
            time(lb, false) / time(rb, false),
            time(rs, false) / time(lb, false),
        );
        println!("   (paper: encode 2.1x / 1.4x; decode 4.7-8.3x / 3.2-6.6x)");
    }

    // Native CPU wall-clock: the register-block layout's communication-free
    // tile transpose is also the fast path on CPUs.
    let mut t = Table::new(
        "Native CPU wall-clock encode (GB/s) per layout",
        &["elements", "natural", "interleaved32"],
    );
    for &n in &[1usize << 20, 1 << 22, 1 << 24] {
        t.row(&[
            format!("2^{}", n.trailing_zeros()),
            format!("{:.2}", wall_encode(Layout::Natural, n)),
            format!("{:.2}", wall_encode(Layout::Interleaved32, n)),
        ]);
    }
    t.print();
    hpmdr_bench::write_json("fig7", &json);
}
