//! Figure 9: end-to-end throughput with and without pipeline
//! optimization, for refactoring and reconstruction on both device models
//! (discrete-event replay of the Figure 4 DAGs), plus real host-CPU
//! wall-clock overlap as a sanity measurement.
//!
//! Paper shape: overlap buys ~1.43×/1.83× (refactor/reconstruct) on H100
//! and ~1.41×/1.43× on MI250X.

use hpmdr_bench::{reconstruct_stage_times, refactor_stage_times, Table};
use hpmdr_core::pipeline::{des_pipeline, refactor_pipeline, PipelineMode};
use hpmdr_core::RefactorConfig;
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_device::{Device, DeviceConfig};
use std::sync::Arc;

fn main() {
    let mut json = Vec::new();

    // ---------- DES replay on the device models ------------------------
    let tile_elems = 1usize << 22; // 16 MiB f32 tiles
    let n_tiles = 16;
    let out_ratio = 0.85; // compressed stream size per tile (measured below)
    let mut t = Table::new(
        "Figure 9: end-to-end throughput ±pipeline optimization (DES, GB/s)",
        &[
            "device",
            "direction",
            "w/o pipeline",
            "w/ pipeline",
            "speedup",
        ],
    );
    for cfg in [DeviceConfig::h100_like(), DeviceConfig::mi250x_like()] {
        for dir in ["refactor", "reconstruct"] {
            let st = if dir == "refactor" {
                refactor_stage_times(
                    &cfg,
                    tile_elems,
                    4,
                    32,
                    (tile_elems as f64 * 4.0 * out_ratio) as usize,
                )
            } else {
                reconstruct_stage_times(
                    &cfg,
                    tile_elems,
                    4,
                    32,
                    (tile_elems as f64 * 4.0 * out_ratio) as usize,
                )
            };
            let tiles = vec![st; n_tiles];
            let seq = des_pipeline(&tiles, false, 0, 3).makespan;
            let ovl = des_pipeline(&tiles, true, 0, 3).makespan;
            let bytes = (tile_elems * 4 * n_tiles) as f64;
            t.row(&[
                cfg.name.clone(),
                dir.to_string(),
                format!("{:.1}", bytes / seq / 1e9),
                format!("{:.1}", bytes / ovl / 1e9),
                format!("{:.2}x", seq / ovl),
            ]);
            json.push(serde_json::json!({
                "device": cfg.name, "direction": dir,
                "seq_gbps": bytes / seq / 1e9, "ovl_gbps": bytes / ovl / 1e9,
                "speedup": seq / ovl,
            }));
        }
    }
    t.print();
    println!("(paper: H100 1.43x/1.83x; MI250X 1.41x/1.43x)");

    // ---------- Real wall-clock overlap on host CPU ---------------------
    let shape = vec![96usize, 64, 64];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, 3);
    let data = Arc::new(ds.variables[0].as_f32());
    let cfg = RefactorConfig::default();
    let tile_rows = 12;
    let tile_bytes = tile_rows * shape[1] * shape[2] * 4 + 4096;
    let device = Device::new(DeviceConfig::h100_like(), tile_bytes, 3);
    // Warm-up, then measure.
    let _ = refactor_pipeline(
        data.clone(),
        &shape,
        &cfg,
        &device,
        PipelineMode::Sequential,
        tile_rows,
    );
    let seq = refactor_pipeline(
        data.clone(),
        &shape,
        &cfg,
        &device,
        PipelineMode::Sequential,
        tile_rows,
    );
    let ovl = refactor_pipeline(
        data.clone(),
        &shape,
        &cfg,
        &device,
        PipelineMode::Overlapped,
        tile_rows,
    );
    let mut t = Table::new(
        "Host-CPU wall-clock refactoring ±overlap (sanity measurement)",
        &["mode", "seconds", "GB/s"],
    );
    t.row(&[
        "sequential".into(),
        format!("{:.3}", seq.wall_seconds),
        format!("{:.3}", seq.throughput_gbps),
    ]);
    t.row(&[
        "overlapped".into(),
        format!("{:.3}", ovl.wall_seconds),
        format!("{:.3}", ovl.throughput_gbps),
    ]);
    t.print();
    println!(
        "CPU overlap speedup {:.2}x (copies are tiny relative to CPU compute,\nso most of the paper's gain only materializes at GPU kernel speeds)",
        seq.wall_seconds / ovl.wall_seconds
    );
    json.push(serde_json::json!({
        "device": "host-cpu", "direction": "refactor",
        "seq_gbps": seq.throughput_gbps, "ovl_gbps": ovl.throughput_gbps,
        "speedup": seq.wall_seconds / ovl.wall_seconds,
    }));
    hpmdr_bench::write_json("fig9", &json);
}
