//! Figure 11: HP-MDR vs. the five baseline progressive frameworks —
//! retrieval throughput and additional-retrieval ratio across error
//! tolerances (1e-1..1e-6, relative to each variable's range) on four
//! datasets.
//!
//! Baselines: MDR on CPU \[24\] (same algorithms, host threads) and the
//! multi-component framework \[31\] with MGARD / SZ3 / ZFP-fixed-accuracy
//! ("CPU") / ZFP-fixed-rate ("GPU") backends. HP-MDR's GPU number is the
//! modeled H100 kernel time; its CPU wall-clock is measured directly.
//!
//! Paper shape: HP-MDR leads throughput everywhere (up to 6.6× over the
//! best baseline, M-MGARD); retrieval sizes competitive with (not always
//! better than) the best baseline.

use hpmdr_baselines::multi_component::{
    geometric_schedule, rate_schedule, MgardBackend, MultiComponent, SzBackend, ZfpAccuracyBackend,
    ZfpRateBackend,
};
use hpmdr_bench::{reconstruct_stage_times, Table};
use hpmdr_core::{refactor, RefactorConfig, RetrievalPlan, RetrievalSession};
use hpmdr_datasets::{metrics, Dataset, DatasetKind};
use hpmdr_device::DeviceConfig;
use std::time::Instant;

const RELS: [f64; 6] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];

struct Row {
    dataset: &'static str,
    system: String,
    rel: f64,
    gbps: f64,
    extra_ratio: f64, // fetched bytes / native bytes
}

fn main() {
    let kinds = [
        DatasetKind::Nyx,
        DatasetKind::Miranda,
        DatasetKind::HurricaneIsabel,
        DatasetKind::Jhtdb,
    ];
    let h100 = DeviceConfig::h100_like();
    let mut rows: Vec<Row> = Vec::new();

    for kind in kinds {
        let ds = Dataset::generate(kind, 21);
        let truth = ds.variables[0].data.clone();
        let shape = ds.shape.clone();
        let native_bytes = truth.len() * if kind.dtype() == "f64" { 8 } else { 4 };
        let range = metrics::value_range(&truth);
        let data32 = ds.variables[0].as_f32();

        // ---------------- HP-MDR ----------------
        let refactored = refactor(&data32, &shape, &RefactorConfig::default());
        for rel in RELS {
            let eb = rel * range;
            let (plan, _) = RetrievalPlan::for_error(&refactored, eb);
            let t0 = Instant::now();
            let mut sess = RetrievalSession::new(&refactored);
            sess.refine_to(&plan);
            let rec: Vec<f32> = sess.reconstruct();
            let wall = t0.elapsed().as_secs_f64();
            std::hint::black_box(&rec);
            let fetched = sess.fetched_bytes();
            // Modeled H100 kernel time for the same reconstruction.
            let k = plan
                .units
                .iter()
                .zip(&refactored.streams)
                .map(|(&u, s)| s.planes_in_units(u))
                .max()
                .unwrap_or(0);
            let st = reconstruct_stage_times(&h100, truth.len(), 4, k.max(1), fetched);
            rows.push(Row {
                dataset: kind.name(),
                system: "HP-MDR (H100 model)".into(),
                rel,
                gbps: native_bytes as f64 / st.compute / 1e9,
                extra_ratio: fetched as f64 / native_bytes as f64,
            });
            rows.push(Row {
                dataset: kind.name(),
                system: "MDR-CPU (measured)".into(),
                rel,
                gbps: native_bytes as f64 / wall / 1e9,
                extra_ratio: fetched as f64 / native_bytes as f64,
            });
        }

        // ---------------- Multi-component baselines ----------------
        let schedule = geometric_schedule(range * 1e-1, 1e-1, 6);
        macro_rules! run_mc {
            ($backend:expr, $label:expr, $sched:expr) => {{
                let mc = MultiComponent::build($backend, &truth, &shape, &$sched);
                for rel in RELS {
                    let tau = rel * range;
                    let t0 = Instant::now();
                    let (rec, bytes, _err) = mc.retrieve(tau);
                    let wall = t0.elapsed().as_secs_f64();
                    std::hint::black_box(&rec);
                    rows.push(Row {
                        dataset: kind.name(),
                        system: $label.into(),
                        rel,
                        gbps: native_bytes as f64 / wall / 1e9,
                        extra_ratio: bytes as f64 / native_bytes as f64,
                    });
                }
            }};
        }
        run_mc!(MgardBackend, "M-MGARD", schedule);
        run_mc!(SzBackend, "M-SZ3", schedule);
        run_mc!(ZfpAccuracyBackend, "M-ZFP-CPU", schedule);
        run_mc!(
            ZfpRateBackend,
            "M-ZFP-GPU",
            rate_schedule(&[6.0, 8.0, 10.0, 12.0, 14.0, 16.0])
        );
    }

    // ---------------- Render ----------------
    for panel in ["throughput", "retrieval"] {
        let mut t = Table::new(
            &format!("Figure 11 ({panel}): HP-MDR vs baselines"),
            &[
                "dataset", "system", "1e-1", "1e-2", "1e-3", "1e-4", "1e-5", "1e-6",
            ],
        );
        let systems: Vec<String> = {
            let mut seen = Vec::new();
            for r in &rows {
                if !seen.contains(&r.system) {
                    seen.push(r.system.clone());
                }
            }
            seen
        };
        for kind in kinds {
            for sys in &systems {
                let mut cells = vec![kind.name().to_string(), sys.clone()];
                for rel in RELS {
                    let r = rows
                        .iter()
                        .find(|r| r.dataset == kind.name() && &r.system == sys && r.rel == rel)
                        .expect("row exists");
                    cells.push(if panel == "throughput" {
                        format!("{:.2}", r.gbps)
                    } else {
                        format!("{:.1}%", r.extra_ratio * 100.0)
                    });
                }
                t.row(&cells);
            }
        }
        t.print();
    }

    // Headline factor: HP-MDR (H100 model) vs best *measured* baseline.
    let mut hp_avg = 0.0;
    let mut best_base_avg = 0.0;
    let mut n = 0.0;
    for kind in kinds {
        for rel in RELS {
            let hp = rows
                .iter()
                .find(|r| {
                    r.dataset == kind.name() && r.system.starts_with("HP-MDR") && r.rel == rel
                })
                .expect("hp row");
            let best = rows
                .iter()
                .filter(|r| {
                    r.dataset == kind.name()
                        && r.rel == rel
                        && (r.system.starts_with("M-") || r.system.starts_with("MDR-CPU"))
                })
                .map(|r| r.gbps)
                .fold(0.0f64, f64::max);
            hp_avg += hp.gbps;
            best_base_avg += best;
            n += 1.0;
        }
    }
    println!(
        "\naverage throughput: HP-MDR(model) {:.1} GB/s vs best baseline {:.1} GB/s -> {:.1}x",
        hp_avg / n,
        best_base_avg / n,
        hp_avg / best_base_avg
    );
    println!("(paper: 11.9 GB/s vs 1.8 GB/s -> 6.6x over M-MGARD)");

    let json: Vec<_> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "dataset": r.dataset, "system": r.system, "rel": r.rel,
                "gbps": r.gbps, "extra_ratio": r.extra_ratio,
            })
        })
        .collect();
    hpmdr_bench::write_json("fig11", &json);
}
