//! Figure 14: multi-GPU kernel throughput and end-to-end retrieval time
//! on the JHTDB-like dataset — a full simulated Frontier node (8×MI250X
//! GCDs) vs. its 64-core CPU.
//!
//! Kernel times are modeled from the measured per-shard retrieval work
//! (iterations, bytes) via the architecture-aware stage model; end-to-end
//! adds storage I/O and the GPU's bring-up overheads, which is exactly why
//! the paper's 10.4× kernel advantage shrinks to 4.2× end to end.

use hpmdr_bench::{qoi_loop_time, Table};
use hpmdr_core::multi_device::EndToEndModel;
use hpmdr_core::{refactor, retrieve_with_qoi_control, EbEstimator, RefactorConfig};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_device::DeviceConfig;
use hpmdr_qoi::{eval_field, QoiExpr};

/// Sustained parallel-filesystem read bandwidth per node.
const PFS_READ_GBPS: f64 = 16.0;
/// Extra I/O overhead of HP-MDR's many small unit files (per shard).
const SMALL_FILE_OVERHEAD_S: f64 = 0.08;
/// One-time GPU memory allocation / bring-up overhead per device.
const GPU_SETUP_S: f64 = 0.35;
/// Shards on the node: one per GCD.
const SHARDS: usize = 8;
/// The JHTDB full-scale factor relative to our scaled shard (paper: each
/// GCD handles 6 GB; our shard is measured and scaled linearly).
fn scale_factor(shard_bytes: usize) -> f64 {
    6e9 / shard_bytes as f64
}

fn main() {
    let ds = Dataset::generate(DatasetKind::Jhtdb, 42);
    let [vx, vy, vz] = ds.velocity_triplet().expect("velocity triplet");
    let vars = [vx.as_f32(), vy.as_f32(), vz.as_f32()];
    let refs: Vec<_> = vars
        .iter()
        .map(|v| refactor(v, &ds.shape, &RefactorConfig::default()))
        .collect();
    let rr: Vec<&_> = refs.iter().collect();
    let qoi = QoiExpr::vector_magnitude(3);
    let truth = [vx.data.clone(), vy.data.clone(), vz.data.clone()];
    let tr: Vec<&[f64]> = truth.iter().map(|v| v.as_slice()).collect();
    let f = eval_field(&qoi, &tr);
    let q_range =
        f.iter().cloned().fold(f64::MIN, f64::max) - f.iter().cloned().fold(f64::MAX, f64::min);
    let tau = 1e-3 * q_range;

    // Measure the retrieval *work* once on the scaled shard.
    let out = retrieve_with_qoi_control::<f32>(&rr, &qoi, tau, EbEstimator::Mape { c: 10.0 });
    let shard_native = vars[0].len() * 4 * 3;
    let scale = scale_factor(shard_native);
    let native_per_shard = (shard_native as f64 * scale) as usize;
    let recompose = (out.recompose_elements as f64 * scale) as u64;
    let fetched = (out.fetched_bytes as f64 * scale) as usize;
    let avg_planes = ((out.bitrate / 3.0).ceil() as usize).clamp(4, 32);

    let gpu = DeviceConfig::mi250x_like();
    let cpu = DeviceConfig::cpu_epyc_like();

    // Kernel time per shard; shards run concurrently on the 8 GCDs while
    // the CPU node splits its 64 cores across all 8 shards (0.75 GB/core
    // in the paper's setup).
    let gpu_kernel = qoi_loop_time(&gpu, recompose, fetched, 4, avg_planes);
    let cpu_kernel_one_shard = qoi_loop_time(&cpu, recompose, fetched, 4, avg_planes);
    let cpu_kernel = cpu_kernel_one_shard * SHARDS as f64; // shared cores

    let gpu_e2e = EndToEndModel {
        kernel_seconds: gpu_kernel,
        io_seconds: fetched as f64 / (PFS_READ_GBPS * 1e9 / SHARDS as f64)
            + SMALL_FILE_OVERHEAD_S * 4.0,
        overhead_seconds: GPU_SETUP_S,
    };
    let cpu_e2e = EndToEndModel {
        kernel_seconds: cpu_kernel,
        io_seconds: (fetched * SHARDS) as f64 / (PFS_READ_GBPS * 1e9),
        overhead_seconds: 0.02,
    };

    let node_native = native_per_shard * SHARDS;
    let gpu_tp = node_native as f64 / gpu_kernel / 1e9;
    let cpu_tp = node_native as f64 / cpu_kernel / 1e9;

    let mut t = Table::new(
        "Figure 14: JHTDB retrieval — 8x MI250X GCDs vs 64-core CPU (modeled)",
        &["metric", "8x MI250X", "64-core CPU", "GPU speedup"],
    );
    t.row(&[
        "kernel throughput (GB/s)".into(),
        format!("{gpu_tp:.1}"),
        format!("{cpu_tp:.1}"),
        format!("{:.2}x", gpu_tp / cpu_tp),
    ]);
    t.row(&[
        "end-to-end retrieval (s)".into(),
        format!("{:.2}", gpu_e2e.total()),
        format!("{:.2}", cpu_e2e.total()),
        format!("{:.2}x", cpu_e2e.total() / gpu_e2e.total()),
    ]);
    t.print();
    println!("(paper: 10.36x kernel speedup, 4.18x end-to-end)");
    println!(
        "GPU end-to-end breakdown: kernel {:.2}s, I/O {:.2}s, setup {:.2}s",
        gpu_e2e.kernel_seconds, gpu_e2e.io_seconds, gpu_e2e.overhead_seconds
    );

    hpmdr_bench::write_json(
        "fig14",
        &serde_json::json!({
            "gpu_kernel_gbps": gpu_tp, "cpu_kernel_gbps": cpu_tp,
            "kernel_speedup": gpu_tp / cpu_tp,
            "gpu_e2e_s": gpu_e2e.total(), "cpu_e2e_s": cpu_e2e.total(),
            "e2e_speedup": cpu_e2e.total() / gpu_e2e.total(),
            "measured_shard": {
                "iterations": out.iterations, "bitrate": out.bitrate,
                "fetched_bytes": out.fetched_bytes,
            },
        }),
    );
}
