//! Table 1: datasets used for evaluation (paper extents vs. this
//! reproduction's scaled synthetic equivalents).

use hpmdr_bench::report::fmt;
use hpmdr_bench::Table;
use hpmdr_datasets::{Dataset, DatasetKind};

fn main() {
    let mut t = Table::new(
        "Table 1: evaluation datasets (synthetic equivalents)",
        &[
            "Dataset",
            "n_v",
            "Paper dims",
            "Repro dims",
            "Type",
            "Paper size",
            "Repro size",
        ],
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::TABLE1 {
        let ds = Dataset::generate(kind, 2026);
        let paper = kind.paper_shape();
        let elem: usize = if kind.dtype() == "f64" { 8 } else { 4 };
        let paper_bytes: usize = paper.iter().product::<usize>() * elem * kind.num_variables();
        t.row(&[
            kind.name().to_string(),
            kind.num_variables().to_string(),
            format!("{paper:?}"),
            format!("{:?}", ds.shape),
            kind.dtype().to_string(),
            format!("{:.2} GB", paper_bytes as f64 / 1e9),
            format!("{:.2} MB", ds.native_bytes() as f64 / 1e6),
        ]);
        rows.push(serde_json::json!({
            "dataset": kind.name(),
            "nv": kind.num_variables(),
            "paper_shape": paper,
            "repro_shape": ds.shape,
            "dtype": kind.dtype(),
            "paper_bytes": paper_bytes,
            "repro_bytes": ds.native_bytes(),
            "value_range_var0": fmt(
                ds.variables[0].data.iter().cloned().fold(f64::MIN, f64::max)
                    - ds.variables[0].data.iter().cloned().fold(f64::MAX, f64::min)
            ),
        }));
    }
    t.print();
    hpmdr_bench::write_json("table1", &rows);
    println!("\n(Each dataset is a seeded synthetic field matching the structural");
    println!(" properties of the original; see DESIGN.md for the substitutions.)");
}
