//! Figure 13: validation of guaranteed QoI error control — requested
//! tolerance vs. maximum estimated error vs. maximum actual error during
//! progressive retrieval toward `V_total`, on NYX and mini-JHTDB.
//!
//! The invariant to observe: actual ≤ estimated ≤ requested, with the
//! estimate close to (but never above) the request.

use hpmdr_bench::Table;
use hpmdr_core::{refactor, retrieve_with_qoi_control, EbEstimator, RefactorConfig};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_qoi::{actual_max_error, eval_field, QoiExpr};

const REL_TAUS: [f64; 6] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];

fn main() {
    let mut json = Vec::new();
    for kind in [DatasetKind::Nyx, DatasetKind::MiniJhtdb] {
        let ds = Dataset::generate(kind, 77);
        let [vx, vy, vz] = ds.velocity_triplet().expect("velocity triplet");
        let vars = [vx.as_f32(), vy.as_f32(), vz.as_f32()];
        let refs: Vec<_> = vars
            .iter()
            .map(|v| refactor(v, &ds.shape, &RefactorConfig::default()))
            .collect();
        let rr: Vec<&_> = refs.iter().collect();
        let qoi = QoiExpr::vector_magnitude(3);
        let truth = [vx.data.clone(), vy.data.clone(), vz.data.clone()];
        let tr: Vec<&[f64]> = truth.iter().map(|v| v.as_slice()).collect();
        let f = eval_field(&qoi, &tr);
        let q_range =
            f.iter().cloned().fold(f64::MIN, f64::max) - f.iter().cloned().fold(f64::MAX, f64::min);

        let mut t = Table::new(
            &format!("Figure 13: QoI error control validation, {}", kind.name()),
            &["requested tau", "max estimated", "max actual", "holds"],
        );
        for rel in REL_TAUS {
            let tau = rel * q_range;
            let out =
                retrieve_with_qoi_control::<f32>(&rr, &qoi, tau, EbEstimator::Mape { c: 10.0 });
            let ap: Vec<&[f64]> = out.vars.iter().map(|v| v.as_slice()).collect();
            let actual = actual_max_error(&qoi, &tr, &ap);
            let holds = actual <= out.final_estimate && out.final_estimate <= tau;
            t.row(&[
                format!("{tau:.3e}"),
                format!("{:.3e}", out.final_estimate),
                format!("{actual:.3e}"),
                if holds {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
            ]);
            assert!(holds, "error-control invariant violated");
            json.push(serde_json::json!({
                "dataset": kind.name(), "tau": tau,
                "estimated": out.final_estimate, "actual": actual,
            }));
        }
        t.print();
    }
    hpmdr_bench::write_json("fig13", &json);
    println!("\nInvariant held at every tolerance: actual <= estimated <= requested.");
}
