//! Figure 12: overall kernel throughput of the EB estimation methods on
//! NYX and mini-JHTDB (single simulated MI250X, as in the paper's §7.3.1).
//!
//! Kernel time is modeled per retrieval from the work the loop actually
//! performed (elements recomposed per iteration, compressed bytes
//! decoded), so methods with more iterations pay proportionally. Paper
//! shape: CP highest throughput, MA lowest, MAPE(c=10) a good trade-off.

use hpmdr_bench::{qoi_loop_time, Table};
use hpmdr_core::{refactor, retrieve_with_qoi_control, EbEstimator, RefactorConfig};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_device::DeviceConfig;
use hpmdr_qoi::{eval_field, QoiExpr};

const REL_TAUS: [f64; 5] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

fn main() {
    let cfg = DeviceConfig::mi250x_like();
    let mut json = Vec::new();
    for kind in [DatasetKind::Nyx, DatasetKind::MiniJhtdb] {
        let ds = Dataset::generate(kind, 77);
        let [vx, vy, vz] = ds.velocity_triplet().expect("velocity triplet");
        let vars = [vx.as_f32(), vy.as_f32(), vz.as_f32()];
        let refs: Vec<_> = vars
            .iter()
            .map(|v| refactor(v, &ds.shape, &RefactorConfig::default()))
            .collect();
        let rr: Vec<&_> = refs.iter().collect();
        let qoi = QoiExpr::vector_magnitude(3);
        let truth = [vx.data.clone(), vy.data.clone(), vz.data.clone()];
        let tr: Vec<&[f64]> = truth.iter().map(|v| v.as_slice()).collect();
        let f = eval_field(&qoi, &tr);
        let q_range =
            f.iter().cloned().fold(f64::MIN, f64::max) - f.iter().cloned().fold(f64::MAX, f64::min);
        let native = vars[0].len() * 4 * 3;

        let mut t = Table::new(
            &format!(
                "Figure 12: QoI kernel throughput (GB/s, MI250X model), {}",
                kind.name()
            ),
            &["rel tau", "CP", "MA", "MAPE(c=2)", "MAPE(c=10)"],
        );
        for rel in REL_TAUS {
            let tau = rel * q_range;
            let mut cells = vec![format!("{rel:.0e}")];
            for est in [
                EbEstimator::Cp,
                EbEstimator::Ma,
                EbEstimator::Mape { c: 2.0 },
                EbEstimator::Mape { c: 10.0 },
            ] {
                let out = retrieve_with_qoi_control::<f32>(&rr, &qoi, tau, est);
                let avg_planes = ((out.bitrate / 3.0).ceil() as usize).clamp(4, 32);
                let time = qoi_loop_time(
                    &cfg,
                    out.recompose_elements,
                    out.fetched_bytes,
                    4,
                    avg_planes,
                );
                let gbps = native as f64 / time / 1e9;
                cells.push(format!("{gbps:.1}"));
                json.push(serde_json::json!({
                    "dataset": kind.name(), "method": est.label(), "rel_tau": rel,
                    "gbps": gbps, "iterations": out.iterations,
                }));
            }
            t.row(&cells);
        }
        t.print();
    }
    hpmdr_bench::write_json("fig12", &json);
    println!("\n(paper shape: CP fastest, MA slowest, MAPE in between)");
}
