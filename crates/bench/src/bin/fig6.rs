//! Figure 6: bitplane encoding throughput with the four register-shuffle
//! instruction variants, across input sizes, on both device models.
//!
//! Simulated GB/s from the warp cost model over closed-form kernel event
//! counts (32-bit data, 32 bitplanes). The paper's observations to look
//! for: `reduce-add` best on H100 (native `redux`), unavailable on
//! MI250X where `ballot` wins; MI250X degrades at large sizes from
//! cross-lane contention.

use hpmdr_bench::Table;
use hpmdr_bitplane::{DesignKind, ShuffleInstr};
use hpmdr_device::{CostModel, DeviceConfig};

fn main() {
    let sizes: Vec<usize> = (16..=26).step_by(2).map(|p| 1usize << p).collect();
    let mut json = Vec::new();
    for cfg in [DeviceConfig::h100_like(), DeviceConfig::mi250x_like()] {
        let mut t = Table::new(
            &format!(
                "Figure 6: shuffle-variant encode throughput (GB/s), {}",
                cfg.name
            ),
            &{
                let mut h = vec!["elements"];
                for i in ShuffleInstr::ALL {
                    if DesignKind::RegisterShuffle(i).supported_on(&cfg) {
                        h.push(match i {
                            ShuffleInstr::Ballot => "ballot",
                            ShuffleInstr::Shift => "shift",
                            ShuffleInstr::MatchAny => "match-any",
                            ShuffleInstr::ReduceAdd => "reduce-add",
                        });
                    }
                }
                h
            },
        );
        for &n in &sizes {
            let mut cells = vec![format!("2^{}", n.trailing_zeros())];
            for instr in ShuffleInstr::ALL {
                let design = DesignKind::RegisterShuffle(instr);
                if !design.supported_on(&cfg) {
                    continue;
                }
                let c = design.encode_counters(&cfg, n, 32, 4);
                let gbps = CostModel::throughput_gbps(&cfg, &c, n * 4);
                cells.push(format!("{gbps:.1}"));
                json.push(serde_json::json!({
                    "device": cfg.name, "instr": format!("{instr:?}"),
                    "elements": n, "gbps": gbps,
                }));
            }
            t.row(&cells);
        }
        t.print();
    }
    hpmdr_bench::write_json("fig6", &json);
    println!("\nExpected shape: reduce-add leads on H100-like; ballot leads on");
    println!("MI250X-like with degradation at large sizes (contention).");
}
