//! Tables 2 and 3: bitrate of the error-bound estimation methods (CP, MA,
//! MAPE c=2, MAPE c=10) under QoI error control (`V_total`), on NYX-like
//! and mini-JHTDB velocity fields, across ten tolerances.
//!
//! Paper shape: MA achieves the best (lowest) bitrates, CP the worst; the
//! MAPE variants sit between, with many cells identical across methods
//! (the merged-unit fetch granularity quantizes the choices).

use hpmdr_bench::Table;
use hpmdr_core::{refactor, retrieve_with_qoi_control, EbEstimator, RefactorConfig};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_qoi::{eval_field, QoiExpr};

/// Relative tolerances in the paper's column order.
pub const REL_TAUS: [f64; 10] = [1e-1, 5e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 5e-5, 1e-5, 5e-6];

fn estimators() -> Vec<EbEstimator> {
    vec![
        EbEstimator::Cp,
        EbEstimator::Ma,
        EbEstimator::Mape { c: 2.0 },
        EbEstimator::Mape { c: 10.0 },
    ]
}

fn run_dataset(kind: DatasetKind, title: &str, json: &mut Vec<serde_json::Value>) {
    let ds = Dataset::generate(kind, 77);
    let [vx, vy, vz] = ds.velocity_triplet().expect("velocity triplet");
    let vars = [vx.as_f32(), vy.as_f32(), vz.as_f32()];
    let refs: Vec<_> = vars
        .iter()
        .map(|v| refactor(v, &ds.shape, &RefactorConfig::default()))
        .collect();
    let rr: Vec<&_> = refs.iter().collect();
    let qoi = QoiExpr::vector_magnitude(3);

    let truth = [vx.data.clone(), vy.data.clone(), vz.data.clone()];
    let tr: Vec<&[f64]> = truth.iter().map(|v| v.as_slice()).collect();
    let field = eval_field(&qoi, &tr);
    let q_range = field.iter().cloned().fold(f64::MIN, f64::max)
        - field.iter().cloned().fold(f64::MAX, f64::min);

    let mut t = Table::new(title, &{
        let mut h = vec!["Method"];
        h.extend(REL_TAUS.iter().map(|_| "").collect::<Vec<_>>());
        h
    });
    // Header row of tolerances (Table 2/3 style).
    {
        let mut cells = vec!["rel tau ->".to_string()];
        cells.extend(REL_TAUS.iter().map(|r| format!("{r:.0e}")));
        t.row(&cells);
    }
    for est in estimators() {
        let mut cells = vec![est.label()];
        for rel in REL_TAUS {
            let tau = rel * q_range;
            let out = retrieve_with_qoi_control::<f32>(&rr, &qoi, tau, est);
            cells.push(format!("{:.2}", out.bitrate));
            json.push(serde_json::json!({
                "dataset": kind.name(), "method": est.label(), "rel_tau": rel,
                "bitrate": out.bitrate, "iterations": out.iterations,
                "fetched_bytes": out.fetched_bytes,
                "recompose_elements": out.recompose_elements,
                "estimate": out.final_estimate,
            }));
        }
        t.row(&cells);
    }
    t.print();
}

fn main() {
    let mut json = Vec::new();
    run_dataset(
        DatasetKind::Nyx,
        "Table 2: bitrate of EB estimation methods on NYX (bits/value)",
        &mut json,
    );
    run_dataset(
        DatasetKind::MiniJhtdb,
        "Table 3: bitrate of EB estimation methods on mini-JHTDB (bits/value)",
        &mut json,
    );
    hpmdr_bench::write_json("table2_3", &json);

    // Summaries the paper highlights.
    let avg = |m: &str| {
        let vals: Vec<f64> = json
            .iter()
            .filter(|j| j["method"] == m)
            .map(|j| j["bitrate"].as_f64().expect("bitrate"))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let iters = |m: &str| {
        let vals: Vec<f64> = json
            .iter()
            .filter(|j| j["method"] == m)
            .map(|j| j["iterations"].as_f64().expect("iters"))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    println!(
        "\naverage bitrate:   CP {:.2}  MA {:.2}  MAPE(2) {:.2}  MAPE(10) {:.2}",
        avg("CP"),
        avg("MA"),
        avg("MAPE(c=2)"),
        avg("MAPE(c=10)")
    );
    println!(
        "average iterations: CP {:.1}  MA {:.1}  MAPE(2) {:.1}  MAPE(10) {:.1}",
        iters("CP"),
        iters("MA"),
        iters("MAPE(c=2)"),
        iters("MAPE(c=10)")
    );
    println!("(paper: MA best bitrates / most iterations; CP opposite; MAPE between)");
}
