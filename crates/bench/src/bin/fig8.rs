//! Figure 8: performance and compressibility of the lossless strategies.
//!
//! (a) wall-clock compression/decompression throughput of all-Huffman,
//! all-RLE, and the hybrid strategy at rc ∈ {1, 2, 4}, over the *actual
//! encoded bitplane units* of the evaluation datasets;
//! (b) incremental data retrieval size when reconstructing to a range of
//! error tolerances under each strategy.
//!
//! Paper shape: Huffman smallest retrievals but slowest; RLE fast
//! compression but ~2.7× more retrieval data; hybrid rc=1 nearly matches
//! Huffman's sizes (~8% overhead) at several× the throughput, and larger
//! rc trades size for more speed (decompression especially).

use hpmdr_bench::report::fmt;
use hpmdr_bench::Table;
use hpmdr_core::refactor::{refactor, RefactorConfig};
use hpmdr_core::retrieve::RetrievalPlan;
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_lossless::{Codec, CompressedGroup, HybridCompressor, HybridConfig};
use std::time::Instant;

/// Collect the raw (uncompressed) merged-unit payloads of one variable.
fn raw_units(kind: DatasetKind) -> (Vec<Vec<u8>>, hpmdr_core::refactor::Refactored, usize) {
    let ds = Dataset::generate(kind, 11);
    let data = ds.variables[0].as_f32();
    // Store-direct configuration exposes the raw merged planes.
    let cfg = RefactorConfig {
        hybrid: HybridConfig {
            group_size: 4,
            size_threshold: usize::MAX,
            cr_threshold: 1.0,
        },
        ..RefactorConfig::default()
    };
    let r = refactor(&data, &ds.shape, &cfg);
    let mut units = Vec::new();
    for s in &r.streams {
        for u in &s.units {
            assert_eq!(u.codec, Codec::Direct);
            units.push(u.payload.clone());
        }
    }
    (units, r, data.len() * 4)
}

struct Strategy {
    name: &'static str,
    compressor: HybridCompressor,
    force: Option<Codec>,
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "Huffman",
            compressor: HybridCompressor::new(HybridConfig::with_rc(1.0)),
            force: Some(Codec::Huffman),
        },
        Strategy {
            name: "RLE",
            compressor: HybridCompressor::new(HybridConfig::with_rc(1.0)),
            force: Some(Codec::Rle),
        },
        Strategy {
            name: "Hybrid-rc1",
            compressor: HybridCompressor::new(HybridConfig::with_rc(1.0)),
            force: None,
        },
        Strategy {
            name: "Hybrid-rc2",
            compressor: HybridCompressor::new(HybridConfig::with_rc(2.0)),
            force: None,
        },
        Strategy {
            name: "Hybrid-rc4",
            compressor: HybridCompressor::new(HybridConfig::with_rc(4.0)),
            force: None,
        },
    ]
}

fn main() {
    let kinds = [
        DatasetKind::Nyx,
        DatasetKind::Miranda,
        DatasetKind::HurricaneIsabel,
        DatasetKind::Jhtdb,
    ];
    let mut json = Vec::new();

    // ---------- (a) throughput -----------------------------------------
    let mut t = Table::new(
        "Figure 8a: lossless throughput (GB/s, host CPU wall-clock)",
        &["dataset", "strategy", "comp GB/s", "decomp GB/s", "ratio"],
    );
    let mut per_strategy_units: Vec<(DatasetKind, Vec<Vec<CompressedGroup>>)> = Vec::new();
    for kind in kinds {
        let (units, _r, _native) = raw_units(kind);
        let raw_bytes: usize = units.iter().map(Vec::len).sum();
        let mut dataset_compressed = Vec::new();
        for s in strategies() {
            let t0 = Instant::now();
            let compressed: Vec<CompressedGroup> = units
                .iter()
                .map(|u| match s.force {
                    Some(c) => s.compressor.compress_with(u, c),
                    None => s.compressor.compress(u),
                })
                .collect();
            let comp_dt = t0.elapsed().as_secs_f64();
            let stored: usize = compressed.iter().map(|g| g.stored_len()).sum();

            let t1 = Instant::now();
            for g in &compressed {
                std::hint::black_box(s.compressor.decompress(g).expect("self-produced group"));
            }
            let decomp_dt = t1.elapsed().as_secs_f64();

            let comp_gbps = raw_bytes as f64 / comp_dt / 1e9;
            let decomp_gbps = raw_bytes as f64 / decomp_dt / 1e9;
            t.row(&[
                kind.name().to_string(),
                s.name.to_string(),
                format!("{comp_gbps:.3}"),
                format!("{decomp_gbps:.3}"),
                format!("{:.2}", raw_bytes as f64 / stored as f64),
            ]);
            json.push(serde_json::json!({
                "panel": "a", "dataset": kind.name(), "strategy": s.name,
                "comp_gbps": comp_gbps, "decomp_gbps": decomp_gbps,
                "raw_bytes": raw_bytes, "stored_bytes": stored,
            }));
            dataset_compressed.push(compressed);
        }
        per_strategy_units.push((kind, dataset_compressed));
    }
    t.print();

    // ---------- (b) incremental retrieval size --------------------------
    let mut t = Table::new(
        "Figure 8b: retrieval size vs tolerance (bytes; % over Huffman)",
        &[
            "dataset",
            "rel tol",
            "Huffman",
            "RLE",
            "Hybrid-rc1",
            "Hybrid-rc2",
            "Hybrid-rc4",
        ],
    );
    for (kind, dataset_compressed) in &per_strategy_units {
        let (_, r, _) = raw_units(*kind);
        for rel in [1e-2, 1e-4, 1e-6] {
            let eb = rel * r.value_range;
            let (plan, _) = RetrievalPlan::for_error(&r, eb);
            // Map plan units back to flat unit indices per strategy.
            let mut sizes = Vec::new();
            for strat in dataset_compressed {
                let mut flat = 0usize;
                let mut bytes = 0usize;
                for (s, &u) in r.streams.iter().zip(&plan.units) {
                    for j in 0..s.num_units() {
                        if j < u {
                            bytes += strat[flat + j].stored_len();
                        }
                    }
                    flat += s.num_units();
                }
                sizes.push(bytes);
            }
            let base = sizes[0].max(1);
            let mut cells = vec![kind.name().to_string(), format!("{rel:.0e}")];
            for (i, &b) in sizes.iter().enumerate() {
                let pct = (b as f64 / base as f64 - 1.0) * 100.0;
                cells.push(if i == 0 {
                    format!("{b}")
                } else {
                    format!("{b} ({pct:+.0}%)")
                });
            }
            t.row(&cells);
            json.push(serde_json::json!({
                "panel": "b", "dataset": kind.name(), "rel_tol": rel,
                "sizes": sizes,
            }));
        }
    }
    t.print();
    hpmdr_bench::write_json("fig8", &json);

    // Overall summary like the paper's prose.
    let overhead = |sidx: usize| -> f64 {
        let mut tot = 0.0;
        let mut n = 0.0;
        for row in json.iter().filter(|j| j["panel"] == "b") {
            let sizes = row["sizes"].as_array().expect("sizes");
            let h = sizes[0].as_u64().expect("huffman") as f64;
            let s = sizes[sidx].as_u64().expect("strategy") as f64;
            if h > 0.0 {
                tot += s / h - 1.0;
                n += 1.0;
            }
        }
        100.0 * tot / n
    };
    println!(
        "\naverage extra retrieval vs Huffman: RLE {}%, rc1 {}%, rc2 {}%, rc4 {}%",
        fmt(overhead(1)),
        fmt(overhead(2)),
        fmt(overhead(3)),
        fmt(overhead(4))
    );
    println!("(paper: +270% RLE; +8% rc1; +70% rc2; +93% rc4)");
}
