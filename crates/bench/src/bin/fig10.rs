//! Figure 10: weak scaling on single-node multi-GPU configurations.
//!
//! Each device processes an identical shard through the overlapped
//! pipeline; all host↔device copies contend on the node's shared host
//! memory system. Paper shape: ~95% of ideal on 4×H100, ~89% on 8×MI250X.

use hpmdr_bench::{refactor_stage_times, Table};
use hpmdr_core::multi_device::weak_scaling_sweep;
use hpmdr_core::pipeline::StageTimes;
use hpmdr_device::DeviceConfig;

/// Aggregate host memory bandwidth available for staging copies (shared
/// by every device on the node; the scaling bottleneck). The Frontier
/// node's staging path is narrower per GCD than the H100 node's.
fn host_staging_gbps(cfg: &DeviceConfig) -> f64 {
    match cfg.arch {
        hpmdr_device::Arch::Rocm => 160.0,
        _ => 300.0,
    }
}

fn shard_stages(cfg: &DeviceConfig, tiles: usize) -> Vec<StageTimes> {
    let tile_elems = 1usize << 22;
    let bytes = tile_elems * 4;
    let out_bytes = (bytes as f64 * 0.85) as usize;
    let st = refactor_stage_times(cfg, tile_elems, 4, 32, out_bytes);
    // Copies ride the shared host staging path in this study.
    let staging = host_staging_gbps(cfg);
    let shared = StageTimes {
        h2d: bytes as f64 / (staging * 1e9),
        compute: st.compute,
        d2h: out_bytes as f64 / (staging * 1e9),
    };
    vec![shared; tiles]
}

fn main() {
    let mut json = Vec::new();
    for (cfg, counts) in [
        (DeviceConfig::h100_like(), vec![1usize, 2, 4]),
        (DeviceConfig::mi250x_like(), vec![1usize, 2, 4, 8]),
    ] {
        let tiles = shard_stages(&cfg, 12);
        let pts = weak_scaling_sweep(&tiles, &counts, true, 3);
        let mut t = Table::new(
            &format!("Figure 10: weak scaling, {}", cfg.name),
            &["devices", "makespan (ms)", "speedup", "efficiency"],
        );
        for p in &pts {
            t.row(&[
                p.devices.to_string(),
                format!("{:.2}", p.makespan * 1e3),
                format!("{:.2}", p.speedup),
                format!("{:.1}%", p.efficiency * 100.0),
            ]);
            json.push(serde_json::json!({
                "device": cfg.name, "devices": p.devices,
                "speedup": p.speedup, "efficiency": p.efficiency,
            }));
        }
        t.print();
        let last = pts.last().expect("non-empty sweep");
        println!(
            "{}: {:.0}% of ideal at {} devices (paper: 95% on 4xH100, 89% on 8xMI250X)",
            cfg.name,
            last.efficiency * 100.0,
            last.devices
        );
    }
    hpmdr_bench::write_json("fig10", &json);
}
