//! Perf-trajectory bench: emits machine-readable `BENCH_pr<N>.json`.
//!
//! Measures the PR-acceptance hot paths — refactor, retrieval (full
//! domain + ROI-over-store), and the Huffman codec — at a fixed extent
//! and dataset seed, then writes one JSON report. CI uploads the file as
//! an artifact so every PR leaves a comparable data point; the committed
//! `BENCH_pr<N>.json` files at the repo root form the trajectory.
//!
//! The `facade_*` measurements repeat the refactor/retrieve/ROI paths
//! through the `core::api` façade (`Mdr` / `Reader` over `dyn Store`),
//! so every report shows the façade's overhead next to the direct
//! calls — the contract is "within noise".
//!
//! The `concurrent` section measures the PR 5 retrieval service: N
//! client threads hammering one `SharedReader` over a sharded store,
//! with and without the `CachedStore` decorator — queries/sec and bytes
//! fetched from the backing store per configuration, asserting the
//! cached run fetches strictly fewer bytes and that concurrent answers
//! are byte-identical to the serial reader's.
//!
//! The `kernels` section (PR 6) microbenchmarks the bit-level hot loops
//! scalar-vs-SIMD at the host's best instruction set: 32×32 bit-matrix
//! transpose, bitplane encode fill, Huffman byte histogram, Huffman
//! encode, and fixed-point quantize/dequantize — asserting in-bench that
//! both legs produce identical output before reporting the speedup. The
//! `huffman_encode` point carries a `decision` record for the PR 7
//! retune (pairwise code precombine in the wide encoder).
//!
//! The `ingest` section (PR 7) compares streaming ingest against the
//! whole-input chunked refactor on a larger volume: wall-clock plus
//! peak staged payload bytes from the pipeline's stage-buffer
//! accounting, asserting in-bench that both streaming legs stay within
//! their `lookahead × max-chunk-footprint` bound and that the
//! overlapped schedule is no slower than the serial compute-then-write
//! baseline.
//!
//! The `remote` section (PR 8) serves the sharded store over a loopback
//! HTTP server with injected per-request latency and replays centered
//! ROI queries at 0.1%/1%/10% selectivity through `RemoteStore` twice —
//! one range request per touched group versus coalesced fetch plans —
//! plus a warm re-query against `CachedStore<RemoteStore>`. Asserts
//! in-bench that coalescing issues strictly fewer requests and that the
//! warm re-query reaches the network exactly zero times.
//!
//! The `server` section (PR 9) is a tail-latency load harness for the
//! progressive retrieval server: an open-loop generator drives fleets
//! of 1→1000 keep-alive protocol clients against a loopback
//! `ProgressiveServer`, with every request's latency measured from its
//! *scheduled* arrival time (not the moment a client thread got around
//! to sending it), so queueing delay on a saturated server counts
//! against the tail instead of being coordinated-omitted away. Steady
//! points replay overlapping ROI streams under a generous in-flight
//! budget and assert the shed count stays zero; the final overload
//! point squeezes the budget below one full-domain response and
//! asserts shedding engages as typed `OverBudget` rejects (never a
//! dropped connection), while the gate's idle-admission rule keeps
//! exactly one oversized stream making progress. Per-point cache and
//! admission counters come over the wire from a STATS request.
//!
//! Knobs (environment):
//! * `HPMDR_BENCH_PR`     — PR number for the file name (default 9).
//! * `HPMDR_BENCH_EXTENT` — cubic grid extent (default 48).
//! * `HPMDR_BENCH_INGEST_EXTENT` — cubic extent for the ingest section
//!   (default `max(HPMDR_BENCH_EXTENT, 128)`; the acceptance run uses
//!   `HPMDR_BENCH_EXTENT=512`).
//! * `HPMDR_BENCH_REPS`   — timed repetitions per measurement (default 5).
//! * `HPMDR_BENCH_SERVER_CLIENTS` — cap on the client-fleet sweep of the
//!   `server` section (default 1000; smoke runs use a small cap).
//! * `HPMDR_BENCH_OUT`    — output directory (default current dir).

use hpmdr_core::chunked::ChunkedRefactored;
use hpmdr_core::chunked::{refactor_chunked, ChunkedConfig};
use hpmdr_core::ingest::{IngestOptions, SliceSource};
use hpmdr_core::prelude::{
    open_store, Approximation, CachedStore, InMemoryStore, Mdr, MdrConfig, ParallelBackend, Query,
    Reader, RemoteStore, RemoteStoreConfig, SharedReader, Store, Target,
};
use hpmdr_core::roi::{Region, RoiRequest};
use hpmdr_core::storage::{write_chunked_store, ChunkedStoreReader};
use hpmdr_core::{refactor, RefactorConfig, RetrievalPlan, RetrievalSession};
use hpmdr_datasets::{Dataset, DatasetKind};
use hpmdr_lossless::huffman;
use hpmdr_netstore::{FaultPlan, LoopbackShardServer};
use hpmdr_server::{
    ProgressiveClient, ProgressiveServer, QueryOutcome, QueryRequest, Registry, RejectCode,
    ServerConfig, StatsReply,
};
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 5;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e3 / reps as f64
}

#[derive(Serialize)]
struct CodecPoint {
    payload: String,
    bytes: usize,
    compress_ms: f64,
    compress_gbps: f64,
    decompress_ms: f64,
    decompress_gbps: f64,
}

#[derive(Serialize)]
struct RetrievePoint {
    rel_tolerance: f64,
    ms: f64,
    facade_ms: f64,
}

#[derive(Serialize)]
struct ConcurrentPoint {
    clients: usize,
    queries: usize,
    uncached_wall_ms: f64,
    uncached_qps: f64,
    /// Bytes the uncached run fetched from the backing store.
    uncached_bytes: usize,
    cached_wall_ms: f64,
    cached_qps: f64,
    /// Bytes the cached run fetched from the backing store (every other
    /// byte was served from the shared LRU).
    cached_bytes: usize,
    cache_hits: usize,
    cache_misses: usize,
    /// `hits / (hits + misses)` over the cached run.
    cache_hit_rate: f64,
    /// Misses that only extended an already-cached unit prefix (the
    /// progressive-refinement fast path) rather than starting cold.
    cache_extensions: usize,
}

#[derive(Serialize)]
struct KernelPoint {
    kernel: String,
    /// Instruction set the SIMD leg dispatched to.
    isa: String,
    /// Working-set size in bytes.
    bytes: usize,
    scalar_ms: f64,
    simd_ms: f64,
    /// `scalar_ms / simd_ms` (> 1 means the vector kernel is faster).
    speedup: f64,
    /// Tuning decision recorded for this kernel (PR 7: the wide Huffman
    /// encoder retune), derived from the measured speedup.
    decision: Option<String>,
}

/// One ROI selectivity served over the network tier, per-group vs
/// coalesced vs warm-cache.
#[derive(Serialize)]
struct RemotePoint {
    /// Fraction of the domain the centered ROI covers.
    selectivity: f64,
    region_side: usize,
    /// One `Range:` request per touched (chunk, group) — coalescing off.
    per_group_requests: usize,
    per_group_bytes: usize,
    per_group_wall_ms: f64,
    /// Merged ranges under the default gap threshold.
    coalesced_requests: usize,
    coalesced_bytes: usize,
    /// Gap bytes fetched and discarded to merge ranges.
    coalesced_wasted_bytes: usize,
    coalesced_wall_ms: f64,
    /// Backing requests the warm re-query issued (asserted zero).
    warm_requests: usize,
    warm_wall_ms: f64,
}

/// One leg of the streaming-vs-whole-input ingest comparison.
#[derive(Serialize)]
struct IngestPoint {
    /// `whole_input`, `serial`, or `overlapped`.
    mode: String,
    wall_ms: f64,
    /// High-water mark of staged payload bytes (stage-buffer accounting
    /// for the streaming legs; the materialized input for whole-input).
    peak_staged_bytes: usize,
    /// `lookahead × max-chunk-footprint` memory bound (0 = unbounded:
    /// the whole-input path must materialize the dataset).
    staging_bound_bytes: usize,
    lookahead: usize,
    chunks: usize,
    bytes_written: usize,
}

/// One client-fleet step of the progressive-server load harness.
#[derive(Serialize)]
struct ServerPoint {
    /// `steady` (generous budget, overlapping ROI streams) or
    /// `overload` (budget below one full-domain response).
    mode: String,
    clients: usize,
    /// Requests issued by the open-loop schedule (each is a whole
    /// refinement stream or a typed reject, never a dropped request).
    requests: usize,
    /// The server's in-flight admission budget for this point.
    budget_bytes: usize,
    /// Arrival rate the open-loop schedule offered.
    offered_qps: f64,
    /// Completed responses per second of schedule wall-clock.
    achieved_qps: f64,
    /// Latency percentiles measured from each request's *scheduled*
    /// arrival (coordinated-omission-safe), over all responses —
    /// streams and typed rejects alike.
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    /// Admission counters from the wire STATS reply.
    accepted: u64,
    shed: u64,
    /// `shed / (accepted + shed)` — zero on every steady point,
    /// non-zero (and typed `OverBudget`) on the overload point.
    shed_rate: f64,
    /// Approximation frames the server wrote during this point.
    served_frames: u64,
    /// Shared-cache counters for the dataset, from the same STATS reply.
    cache_hits: usize,
    cache_misses: usize,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct Report {
    pr: usize,
    extent: usize,
    seed: u64,
    reps: usize,
    refactor_ms: f64,
    refactor_gbps: f64,
    facade_refactor_ms: f64,
    retrieve: Vec<RetrievePoint>,
    roi_store_ms: f64,
    facade_roi_store_ms: f64,
    concurrent: Vec<ConcurrentPoint>,
    remote: Vec<RemotePoint>,
    server: Vec<ServerPoint>,
    huffman: Vec<CodecPoint>,
    kernels: Vec<KernelPoint>,
    ingest_extent: usize,
    ingest: Vec<IngestPoint>,
}

/// The concurrent-clients workload: a cycle of overlapping ROI queries
/// plus a periodic full-domain one — the repeated/overlapping access
/// pattern a shared cache exists for.
fn client_queries(extent: usize, value_range: f64) -> Vec<Query> {
    let side = (extent / 3).max(4).min(extent);
    let step = ((extent - side).max(1) / 4).max(1);
    let mut queries: Vec<Query> = (0..4)
        .map(|i| {
            let start = (i * step).min(extent - side);
            Query::region(
                Target::AbsError(1e-3 * value_range),
                Region::new(&[start; 3], &[side; 3]),
            )
        })
        .collect();
    queries.push(Query::full(Target::AbsError(1e-2 * value_range)));
    queries
}

/// Run `clients` threads, each serving every query `reps` times from a
/// clone of `reader`; returns wall ms and one client's answers (for the
/// byte-identity assertion).
fn hammer(
    reader: &SharedReader<ParallelBackend>,
    queries: &[Query],
    clients: usize,
    reps: usize,
) -> (f64, Vec<Approximation<f32>>) {
    let t = Instant::now();
    let answers = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let client = reader.clone();
                s.spawn(move || {
                    let mut last = Vec::new();
                    for _ in 0..reps {
                        last = queries
                            .iter()
                            .map(|q| client.retrieve::<f32>(q).expect("query serves"))
                            .collect();
                    }
                    last
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .next_back()
            .expect("at least one client")
    });
    (t.elapsed().as_secs_f64() * 1e3, answers)
}

/// Replay centered ROI queries of rising selectivity against the
/// sharded store served over loopback HTTP: one range request per
/// touched group vs coalesced fetch plans, then a warm re-query
/// through the memory tier. Per-request latency is injected so fewer
/// requests shows up as less wall-clock, not just smaller counters.
fn remote_points(
    dir: &std::path::Path,
    extent: usize,
    value_range: f64,
    reps: usize,
) -> Vec<RemotePoint> {
    let server = LoopbackShardServer::serve_with_faults(
        dir,
        FaultPlan {
            latency: std::time::Duration::from_micros(300),
            ..FaultPlan::default()
        },
    )
    .expect("loopback server starts");
    let url = server.url();
    let local = ChunkedStoreReader::open(dir).expect("store opens");

    [0.001f64, 0.01, 0.1]
        .into_iter()
        .map(|selectivity| {
            let side = ((extent as f64 * selectivity.cbrt()) as usize + 1).min(extent);
            let start = (extent - side) / 2;
            let query = Query::region(
                Target::AbsError(1e-4 * value_range),
                Region::new(&[start; 3], &[side; 3]),
            );
            let want = Reader::new(&local)
                .retrieve::<f32>(&query)
                .expect("query serves");

            // Leg 1: coalescing off — the trait-default schedule, one
            // range request per touched (chunk, group).
            let per_group = RemoteStore::open_with(
                &url,
                RemoteStoreConfig {
                    coalesce: false,
                    ..RemoteStoreConfig::default()
                },
            )
            .expect("remote store opens");
            let (req0, xfer0) = (per_group.requests(), per_group.transfer_bytes());
            let got = Reader::new(&per_group)
                .retrieve::<f32>(&query)
                .expect("query serves");
            assert_eq!(got.data, want.data, "remote answer must match local");
            let per_group_requests = per_group.requests() - req0;
            let per_group_bytes = per_group.transfer_bytes() - xfer0;
            let per_group_wall_ms = time_ms(reps, || {
                let r = Reader::new(&per_group);
                std::hint::black_box(r.retrieve::<f32>(&query).expect("query serves"));
            });

            // Leg 2: coalesced fetch plans under the default gap
            // threshold.
            let coalesced =
                RemoteStore::open_with(&url, RemoteStoreConfig::default()).expect("remote opens");
            let (req0, xfer0, waste0) = (
                coalesced.requests(),
                coalesced.transfer_bytes(),
                coalesced.wasted_bytes(),
            );
            let got = Reader::new(&coalesced)
                .retrieve::<f32>(&query)
                .expect("query serves");
            assert_eq!(got.data, want.data, "coalesced answer must match local");
            let coalesced_requests = coalesced.requests() - req0;
            let coalesced_bytes = coalesced.transfer_bytes() - xfer0;
            let coalesced_wasted_bytes = coalesced.wasted_bytes() - waste0;
            assert!(
                coalesced_requests < per_group_requests,
                "coalescing must issue fewer requests: {coalesced_requests} vs {per_group_requests}"
            );
            let coalesced_wall_ms = time_ms(reps, || {
                let r = Reader::new(&coalesced);
                std::hint::black_box(r.retrieve::<f32>(&query).expect("query serves"));
            });

            // Leg 3: the two-tier hierarchy — after one cold query,
            // repeats must never reach the network.
            let cached = CachedStore::with_default_budget(
                RemoteStore::open_url(&url).expect("remote store opens"),
            );
            let cold = Reader::new(&cached)
                .retrieve::<f32>(&query)
                .expect("query serves");
            assert_eq!(cold.data, want.data, "cached answer must match local");
            let req0 = cached.requests();
            let warm = Reader::new(&cached)
                .retrieve::<f32>(&query)
                .expect("query serves");
            let warm_requests = cached.requests() - req0;
            assert_eq!(warm_requests, 0, "warm re-query must issue zero requests");
            assert_eq!(warm.data, want.data, "warm answer must match local");
            let warm_wall_ms = time_ms(reps, || {
                let r = Reader::new(&cached);
                std::hint::black_box(r.retrieve::<f32>(&query).expect("query serves"));
            });

            RemotePoint {
                selectivity,
                region_side: side,
                per_group_requests,
                per_group_bytes,
                per_group_wall_ms,
                coalesced_requests,
                coalesced_bytes,
                coalesced_wasted_bytes,
                coalesced_wall_ms,
                warm_requests,
                warm_wall_ms,
            }
        })
        .collect()
}

/// What one open-loop run produced: per-request latencies (from
/// scheduled arrival), the schedule's wall-clock, and every typed
/// reject the fleet saw.
struct LoadOutcome {
    latencies_ms: Vec<f64>,
    wall_ms: f64,
    reject_codes: Vec<RejectCode>,
}

fn connect_with_retry(addr: SocketAddr) -> ProgressiveClient {
    for attempt in 1..=50u64 {
        match ProgressiveClient::connect(addr) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(Duration::from_millis(5 * attempt)),
        }
    }
    panic!("cannot connect to the loopback progressive server at {addr}");
}

/// Drive `total` requests through `clients` keep-alive connections on a
/// global open-loop arrival schedule (one request every `interarrival`,
/// cycling through `requests`). Latency is measured from the request's
/// *scheduled* arrival, so time spent waiting for a free client on a
/// saturated server lands in the tail instead of being coordinated-
/// omitted away.
fn drive_open_loop(
    addr: SocketAddr,
    clients: usize,
    total: usize,
    interarrival: Duration,
    requests: &[QueryRequest],
) -> LoadOutcome {
    let next = AtomicUsize::new(0);
    // The schedule opens after a grace period so the whole fleet is
    // connected before the first arrival is considered late.
    let open = Instant::now() + Duration::from_millis(50 + clients as u64 / 2);
    let per_client = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut client = connect_with_retry(addr);
                    let mut latencies = Vec::new();
                    let mut rejects = Vec::new();
                    loop {
                        // ORDERING: work-stealing cursor; atomicity of
                        // the increment is all the claim needs.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let scheduled = open + interarrival * i as u32;
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let req = &requests[i % requests.len()];
                        let deadline = Instant::now() + Duration::from_secs(60);
                        match client.query::<f32>(req, deadline).expect("transport holds") {
                            QueryOutcome::Frames(frames) => {
                                assert!(
                                    frames.last().is_some_and(|f| f.header.is_final),
                                    "every served stream ends with a final frame"
                                );
                            }
                            QueryOutcome::Rejected(r) => rejects.push(r.code),
                        }
                        latencies.push(scheduled.elapsed().as_secs_f64() * 1e3);
                    }
                    (latencies, rejects)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    let wall_ms = open.elapsed().as_secs_f64() * 1e3;
    let mut latencies_ms = Vec::with_capacity(total);
    let mut reject_codes = Vec::new();
    for (lat, rej) in per_client {
        latencies_ms.extend(lat);
        reject_codes.extend(rej);
    }
    LoadOutcome {
        latencies_ms,
        wall_ms,
        reject_codes,
    }
}

/// Fetch the server's registry/cache/admission counters over the wire —
/// the same STATS frame any remote operator would use.
fn wire_stats(addr: SocketAddr) -> StatsReply {
    let mut client = connect_with_retry(addr);
    client
        .stats(Instant::now() + Duration::from_secs(10))
        .expect("stats round-trip")
}

fn summarize_load(
    mode: &str,
    clients: usize,
    budget_bytes: usize,
    offered_qps: f64,
    out: &LoadOutcome,
    stats: &StatsReply,
) -> ServerPoint {
    let mut lat = out.latencies_ms.clone();
    lat.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx]
    };
    let ds = &stats.datasets[0];
    let admitted = stats.accepted + stats.shed;
    ServerPoint {
        mode: mode.to_string(),
        clients,
        requests: lat.len(),
        budget_bytes,
        offered_qps,
        achieved_qps: lat.len() as f64 / (out.wall_ms / 1e3),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_ms: *lat.last().expect("at least one request"),
        accepted: stats.accepted,
        shed: stats.shed,
        shed_rate: stats.shed as f64 / admitted.max(1) as f64,
        served_frames: stats.served_frames,
        cache_hits: ds.hits,
        cache_misses: ds.misses,
        cache_hit_rate: ds.hit_rate,
    }
}

/// The tail-latency load harness: open-loop fleets of 1→`max_clients`
/// protocol clients against a loopback [`ProgressiveServer`], one fresh
/// server (cold cache, zeroed counters) per point, then one overload
/// point whose budget cannot hold even a single full-domain response.
fn server_points(cr: &ChunkedRefactored, extent: usize, max_clients: usize) -> Vec<ServerPoint> {
    let serve = |budget: usize| {
        let mut registry = Registry::new();
        registry.register("bench", Box::new(InMemoryStore::from(cr.clone())), 64 << 20);
        ProgressiveServer::serve(
            registry,
            ServerConfig {
                inflight_budget: budget,
                ..ServerConfig::default()
            },
        )
        .expect("loopback server binds")
    };

    // Steady workload: overlapping ROI refinement streams, the shape the
    // shared cache and the admission estimate are both sized for.
    let value_range = cr.value_range();
    let side = (extent / 4).max(4).min(extent);
    let step = ((extent - side).max(1) / 4).max(1);
    let roi_requests: Vec<QueryRequest> = (0..8)
        .map(|i| {
            let start = (i * step).min(extent - side);
            let query = Query::region(
                Target::AbsError(1e-3 * value_range),
                Region::new(&[start; 3], &[side; 3]),
            );
            QueryRequest::new("bench", "f32", &query)
        })
        .collect();

    let fleet: Vec<usize> = [1usize, 10, 100, 1000]
        .into_iter()
        .filter(|&c| c <= max_clients.max(1))
        .collect();
    let mut points = Vec::new();
    for clients in fleet {
        let server = serve(256 << 20);
        let total = (clients * 4).clamp(64, 1200);
        let offered_qps = ((clients * 100) as f64).min(8000.0);
        let interarrival = Duration::from_secs_f64(1.0 / offered_qps);
        let out = drive_open_loop(server.addr(), clients, total, interarrival, &roi_requests);
        assert!(
            out.reject_codes.is_empty(),
            "steady load must not shed: {:?}",
            out.reject_codes
        );
        let stats = wire_stats(server.addr());
        assert_eq!(stats.shed, 0, "steady load must not shed");
        points.push(summarize_load(
            "steady",
            clients,
            server.admission().budget(),
            offered_qps,
            &out,
            &stats,
        ));
    }

    // Overload: full-domain streams against a budget half their size.
    // The gate's idle-admission rule lets exactly one oversized stream
    // make progress at a time; every concurrent arrival is answered
    // with a typed OverBudget reject, never a dropped connection.
    let full_response_bytes: usize = [extent; 3].iter().product::<usize>() * 4;
    let budget = (full_response_bytes / 2).max(1);
    let server = serve(budget);
    let clients = max_clients.clamp(4, 64);
    let total = (clients * 8).clamp(64, 256);
    let offered_qps = 2000.0;
    let full = QueryRequest::new("bench", "f32", &Query::full(Target::Rel(1e-2)));
    let out = drive_open_loop(
        server.addr(),
        clients,
        total,
        Duration::from_secs_f64(1.0 / offered_qps),
        std::slice::from_ref(&full),
    );
    for code in &out.reject_codes {
        assert_eq!(
            *code,
            RejectCode::OverBudget,
            "overload sheds must be typed OverBudget"
        );
    }
    let stats = wire_stats(server.addr());
    assert!(stats.shed > 0, "over-budget load must engage shedding");
    assert!(stats.accepted > 0, "shedding must not starve the gate");
    points.push(summarize_load(
        "overload",
        clients,
        budget,
        offered_qps,
        &out,
        &stats,
    ));
    points
}

fn huffman_point(name: &str, data: Vec<u8>, reps: usize) -> CodecPoint {
    let compressed = huffman::compress(&data);
    let mut out = Vec::new();
    let compress_ms = time_ms(reps, || {
        std::hint::black_box(huffman::compress(&data));
    });
    let decompress_ms = time_ms(reps, || {
        huffman::decompress_into(&compressed, &mut out).expect("self-produced stream");
        std::hint::black_box(&out);
    });
    assert_eq!(out, data, "huffman roundtrip");
    let gb = data.len() as f64 / 1e9;
    CodecPoint {
        payload: name.to_string(),
        bytes: data.len(),
        compress_ms,
        compress_gbps: gb / (compress_ms / 1e3),
        decompress_ms,
        decompress_gbps: gb / (decompress_ms / 1e3),
    }
}

/// Scalar-vs-SIMD microbenchmarks of the bit-level hot-loop families, at
/// the best instruction set the host supports. Each point asserts the two
/// legs produce identical output before timing them.
fn kernel_points(reps: usize) -> Vec<KernelPoint> {
    use hpmdr_bitplane::{simd::transpose32_with_isa, transpose::transpose32, Isa, Layout};
    use hpmdr_mgard::{dequantize_with_isa, quantize_with_isa};

    let isa = Isa::best_available();
    let point = |kernel: &str, bytes: usize, scalar_ms: f64, simd_ms: f64| KernelPoint {
        kernel: kernel.to_string(),
        isa: isa.name().to_string(),
        bytes,
        scalar_ms,
        simd_ms,
        speedup: scalar_ms / simd_ms,
        decision: None,
    };
    let mut points = Vec::new();

    // 32×32 bit-matrix transpose over a working set of tiles.
    let n_tiles = 1usize << 14;
    let tiles: Vec<[u32; 32]> = {
        let mut s = 0x9e3779b9u32;
        (0..n_tiles)
            .map(|_| {
                std::array::from_fn(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    s
                })
            })
            .collect()
    };
    for t in tiles.iter().take(64) {
        let (mut a, mut b) = (*t, *t);
        transpose32(&mut a);
        transpose32_with_isa(&mut b, isa);
        assert_eq!(a, b, "transpose kernels must agree");
    }
    let scalar_ms = time_ms(reps, || {
        for t in &tiles {
            let mut c = *t;
            transpose32(&mut c);
            std::hint::black_box(&c);
        }
    });
    let simd_ms = time_ms(reps, || {
        for t in &tiles {
            let mut c = *t;
            transpose32_with_isa(&mut c, isa);
            std::hint::black_box(&c);
        }
    });
    points.push(point("transpose32", n_tiles * 128, scalar_ms, simd_ms));

    // Bitplane encode (fixed-point conversion + word-column fill).
    let n = 1usize << 20;
    let field: Vec<f32> = (0..n).map(|i| (i as f32 * 0.0021).sin() * 3.0).collect();
    assert_eq!(
        hpmdr_bitplane::encode(&field, 32, Layout::Interleaved32),
        hpmdr_bitplane::encode_with_isa(&field, 32, Layout::Interleaved32, isa),
        "encode kernels must agree"
    );
    let scalar_ms = time_ms(reps, || {
        std::hint::black_box(hpmdr_bitplane::encode(&field, 32, Layout::Interleaved32));
    });
    let simd_ms = time_ms(reps, || {
        std::hint::black_box(hpmdr_bitplane::encode_with_isa(
            &field,
            32,
            Layout::Interleaved32,
            isa,
        ));
    });
    points.push(point("encode_fill", n * 4, scalar_ms, simd_ms));

    // Huffman byte histogram + whole-stream encode, on the zero-dominated
    // payload shape merged bitplane units actually have.
    let n = 1usize << 22;
    let sparse: Vec<u8> = (0..n)
        .map(|i| if i % 37 == 0 { (i % 7 + 1) as u8 } else { 0 })
        .collect();
    assert_eq!(
        huffman::histogram(&sparse),
        huffman::histogram_with_isa(&sparse, isa),
        "histogram kernels must agree"
    );
    let scalar_ms = time_ms(reps, || {
        std::hint::black_box(huffman::histogram(&sparse));
    });
    let simd_ms = time_ms(reps, || {
        std::hint::black_box(huffman::histogram_with_isa(&sparse, isa));
    });
    points.push(point("histogram", n, scalar_ms, simd_ms));

    assert_eq!(
        huffman::compress(&sparse),
        huffman::compress_with_isa(&sparse, isa),
        "huffman encoders must agree"
    );
    let scalar_ms = time_ms(reps, || {
        std::hint::black_box(huffman::compress(&sparse));
    });
    let simd_ms = time_ms(reps, || {
        std::hint::black_box(huffman::compress_with_isa(&sparse, isa));
    });
    // PR 7 retune: adjacent codes are pre-combined into one accumulator
    // insert when their joint length fits MAX_CODE_LEN, halving the
    // serial accumulate/flush chain (was 1.16x in BENCH_pr6.json).
    let speedup = scalar_ms / simd_ms;
    let mut p = point("huffman_encode", n, scalar_ms, simd_ms);
    p.decision = Some(if speedup >= 1.05 {
        format!(
            "retained wide encoder: pairwise code precombine, {speedup:.2}x vs scalar \
             on this host (1.16x before the PR 7 retune)"
        )
    } else {
        format!(
            "wide encoder not profitable on this host ({speedup:.2}x); \
             HPMDR_FORCE_SCALAR=1 selects the scalar reference encoder"
        )
    });
    points.push(p);

    // Fixed-point quantize/dequantize (MGARD baseline codec hot loop).
    let n = 1usize << 20;
    let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.0017).sin() * 9.0).collect();
    let eb = 1e-4;
    let codes = hpmdr_mgard::quantize::quantize(&vals, eb);
    assert_eq!(
        codes,
        quantize_with_isa(&vals, eb, isa),
        "quantize kernels must agree"
    );
    let scalar_ms = time_ms(reps, || {
        std::hint::black_box(hpmdr_mgard::quantize::quantize(&vals, eb));
    });
    let simd_ms = time_ms(reps, || {
        std::hint::black_box(quantize_with_isa(&vals, eb, isa));
    });
    points.push(point("quantize", n * 8, scalar_ms, simd_ms));

    let deq: Vec<f64> = hpmdr_mgard::quantize::dequantize(&codes, eb);
    let deq_simd: Vec<f64> = dequantize_with_isa(&codes, eb, isa);
    assert_eq!(deq, deq_simd, "dequantize kernels must agree");
    let scalar_ms = time_ms(reps, || {
        std::hint::black_box(hpmdr_mgard::quantize::dequantize::<f64>(&codes, eb));
    });
    let simd_ms = time_ms(reps, || {
        std::hint::black_box(dequantize_with_isa::<f64>(&codes, eb, isa));
    });
    points.push(point("dequantize", n * 8, scalar_ms, simd_ms));

    points
}

/// Streaming-vs-whole-input ingest comparison on a `side³` volume.
///
/// Three legs over the same fixed-seed dataset and chunk grid: the
/// whole-input baseline (refactor the materialized dataset, then write
/// every shard — peak staged payload is O(dataset) by construction),
/// then `Mdr::ingest_with` under the `Sequential` and `Overlapped`
/// schedules, whose peak comes from the pipeline's stage-buffer
/// accounting. Asserts in-bench that both streaming legs honor their
/// `lookahead × max-chunk-footprint` bound and that overlap is no
/// slower than the serial compute-then-write baseline.
fn ingest_points(side: usize, reps: usize) -> Vec<IngestPoint> {
    let shape = vec![side, side, side];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, SEED);
    let data = ds.variables[0].as_f32();
    let raw_bytes = data.len() * 4;
    let chunk = (side / 4).max(8);
    let chunk_extent = [chunk, chunk, chunk];
    let n_chunks: usize = shape.iter().map(|&s| s.div_ceil(chunk)).product();
    let base = std::env::temp_dir().join(format!("hpmdr_bench_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut points = Vec::new();

    let dir = base.join("whole");
    let cfg = ChunkedConfig::with_extent(&chunk_extent);
    let wall_ms = time_ms(reps, || {
        let _ = std::fs::remove_dir_all(&dir);
        let cr = refactor_chunked(&data, &shape, &cfg);
        write_chunked_store(&cr, &dir).expect("store writes");
    });
    let shard_bytes: usize = std::fs::read_dir(&dir)
        .expect("store dir lists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "shard"))
        .map(|e| e.metadata().map(|m| m.len() as usize).unwrap_or(0))
        .sum();
    points.push(IngestPoint {
        mode: "whole_input".to_string(),
        wall_ms,
        peak_staged_bytes: raw_bytes,
        staging_bound_bytes: 0,
        lookahead: 0,
        chunks: n_chunks,
        bytes_written: shard_bytes,
    });

    // Both streaming legs run the scalar backend so the serial-vs-
    // overlapped comparison isolates the stage overlap itself.
    let mdr = MdrConfig::new().chunked(&chunk_extent).build();
    let streaming = |mode: &str, opts: IngestOptions| {
        let dir = base.join(mode);
        let mut last = None;
        let wall_ms = time_ms(reps, || {
            let _ = std::fs::remove_dir_all(&dir);
            let source = SliceSource::new(&data, &shape).expect("length matches shape");
            last = Some(
                mdr.ingest_with(source, &dir, &opts)
                    .expect("ingest succeeds"),
            );
        });
        let r = last.expect("at least one timed run");
        assert!(
            r.peak_staged_bytes <= r.staging_bound_bytes(),
            "{mode} ingest exceeded its staging bound: {} > {}",
            r.peak_staged_bytes,
            r.staging_bound_bytes()
        );
        assert!(
            r.peak_staged_bytes < raw_bytes,
            "streaming ingest must stage less than the whole dataset"
        );
        IngestPoint {
            mode: mode.to_string(),
            wall_ms,
            peak_staged_bytes: r.peak_staged_bytes,
            staging_bound_bytes: r.staging_bound_bytes(),
            lookahead: r.lookahead,
            chunks: r.chunks_written,
            bytes_written: r.bytes_written,
        }
    };
    let serial = streaming("serial", IngestOptions::sequential());
    let overlapped = streaming("overlapped", IngestOptions::overlapped());
    // 10% grace absorbs scheduler noise on small/oversubscribed hosts;
    // the JSON carries the exact wall-clocks.
    assert!(
        overlapped.wall_ms <= serial.wall_ms * 1.10,
        "overlapped ingest must not lose to the serial baseline: {:.2}ms vs {:.2}ms",
        overlapped.wall_ms,
        serial.wall_ms
    );
    points.push(serial);
    points.push(overlapped);

    let _ = std::fs::remove_dir_all(&base);
    points
}

fn main() {
    let pr = env_usize("HPMDR_BENCH_PR", 9);
    let extent = env_usize("HPMDR_BENCH_EXTENT", 48).max(8);
    let reps = env_usize("HPMDR_BENCH_REPS", 5).max(1);

    // Fixed-seed volume, the same generator the criterion benches use.
    let shape = vec![extent, extent, extent];
    let ds = Dataset::generate_with_shape(DatasetKind::Jhtdb, &shape, SEED);
    let data = ds.variables[0].as_f32();
    let gb = (data.len() * 4) as f64 / 1e9;
    let cfg = RefactorConfig::default();

    let refactor_ms = time_ms(reps, || {
        std::hint::black_box(refactor(&data, &shape, &cfg));
    });
    let mdr = Mdr::with_defaults();
    let facade_refactor_ms = time_ms(reps, || {
        std::hint::black_box(mdr.refactor(&data, &shape).expect("finite input"));
    });
    let refactored = refactor(&data, &shape, &cfg);
    let memory = InMemoryStore::from(refactored.clone());

    let retrieve = [1e-2f64, 1e-4, 1e-6]
        .into_iter()
        .map(|rel| {
            let eb = rel * refactored.value_range;
            let ms = time_ms(reps, || {
                let (plan, _) = RetrievalPlan::for_error(&refactored, eb);
                let mut sess = RetrievalSession::new(&refactored);
                sess.refine_to(&plan);
                std::hint::black_box(sess.reconstruct::<f32>());
            });
            let query = Query::full(Target::AbsError(eb));
            let facade_ms = time_ms(reps, || {
                let reader = Reader::new(&memory);
                std::hint::black_box(reader.retrieve::<f32>(&query).expect("query serves"));
            });
            RetrievePoint {
                rel_tolerance: rel,
                ms,
                facade_ms,
            }
        })
        .collect();

    // ROI over a sharded store: a centered hyperslab of ~1% selectivity.
    let chunk = (extent / 4).max(8);
    let cr = refactor_chunked(
        &data,
        &shape,
        &ChunkedConfig::with_extent(&[chunk, chunk, chunk]),
    );
    let dir = std::env::temp_dir().join(format!("hpmdr_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_chunked_store(&cr, &dir).expect("store writes");
    let side = (extent as f64 * 0.01f64.cbrt()) as usize + 1;
    let start = (extent - side) / 2;
    let req = RoiRequest::new(
        Region::new(&[start; 3], &[side; 3]),
        1e-4 * cr.value_range(),
    );
    let reader = ChunkedStoreReader::open(&dir).expect("store opens");
    let roi_store_ms = time_ms(reps, || {
        std::hint::black_box(reader.retrieve_roi::<f32>(&req).expect("roi retrieves"));
    });
    // The same ROI through the façade: open_store + Reader over dyn Store.
    let mut store = open_store(&dir).expect("store opens");
    let roi_query = Query::region(
        Target::AbsError(req.error_bound),
        Region::new(&req.region.start, &req.region.extent),
    );
    let facade_roi_store_ms = time_ms(reps, || {
        let r = Reader::new(store.as_mut());
        std::hint::black_box(r.retrieve::<f32>(&roi_query).expect("roi query serves"));
    });

    // Concurrent retrieval service: 1→8 clients hammering one
    // SharedReader over the sharded store, uncached vs cached.
    let queries = client_queries(extent, cr.value_range());
    let backend = ParallelBackend::new();
    // Serial reference answers for the byte-identity assertion.
    let serial_store = ChunkedStoreReader::open(&dir).expect("store opens");
    let serial: Vec<Approximation<f32>> = {
        let reader = Reader::with_backend(&serial_store, backend.clone());
        queries
            .iter()
            .map(|q| reader.retrieve::<f32>(q).expect("query serves"))
            .collect()
    };
    let concurrent: Vec<ConcurrentPoint> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|clients| {
            let uncached_store: Arc<dyn Store> =
                Arc::new(ChunkedStoreReader::open(&dir).expect("store opens"));
            let uncached = SharedReader::with_backend(Arc::clone(&uncached_store), backend.clone());
            let (uncached_wall_ms, answers) = hammer(&uncached, &queries, clients, reps);
            for (got, want) in answers.iter().zip(&serial) {
                assert_eq!(
                    got.data, want.data,
                    "concurrent answers must be byte-identical to serial"
                );
            }
            let uncached_bytes = uncached_store.bytes_fetched();

            let cached_store = Arc::new(CachedStore::with_default_budget(
                ChunkedStoreReader::open(&dir).expect("store opens"),
            ));
            let cached =
                SharedReader::with_backend(cached_store.clone() as Arc<dyn Store>, backend.clone());
            let (cached_wall_ms, answers) = hammer(&cached, &queries, clients, reps);
            for (got, want) in answers.iter().zip(&serial) {
                assert_eq!(got.data, want.data, "cached answers must match serial");
            }
            let cached_bytes = cached_store.bytes_fetched();
            assert!(
                cached_bytes < uncached_bytes,
                "cache must fetch strictly fewer bytes: {cached_bytes} vs {uncached_bytes}"
            );
            let stats = cached_store.cache_stats();
            let n_queries = clients * reps * queries.len();
            ConcurrentPoint {
                clients,
                queries: n_queries,
                uncached_wall_ms,
                uncached_qps: n_queries as f64 / (uncached_wall_ms / 1e3),
                uncached_bytes,
                cached_wall_ms,
                cached_qps: n_queries as f64 / (cached_wall_ms / 1e3),
                cached_bytes,
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                cache_hit_rate: stats.hit_rate(),
                cache_extensions: stats.extensions,
            }
        })
        .collect();

    // Remote object-store tier: the same sharded store over loopback
    // HTTP, per-group vs coalesced vs warm-cache.
    let remote = remote_points(&dir, extent, cr.value_range(), reps);
    let _ = std::fs::remove_dir_all(&dir);

    // Progressive retrieval server: open-loop fleets against a loopback
    // ProgressiveServer, steady then deliberately over budget.
    let server_clients = env_usize("HPMDR_BENCH_SERVER_CLIENTS", 1000);
    let server = server_points(&cr, extent, server_clients);

    let n = 1usize << 20;
    let sparse: Vec<u8> = (0..n)
        .map(|i| if i % 37 == 0 { (i % 7 + 1) as u8 } else { 0 })
        .collect();
    let noisy: Vec<u8> = {
        let mut s = 0x12345u32;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                (s >> 24) as u8
            })
            .collect()
    };
    let huffman = vec![
        huffman_point("sparse", sparse, reps),
        huffman_point("noisy", noisy, reps),
    ];

    let kernels = kernel_points(reps);

    let ingest_extent = env_usize("HPMDR_BENCH_INGEST_EXTENT", extent.max(128));
    let ingest = ingest_points(ingest_extent, reps);

    let report = Report {
        pr,
        extent,
        seed: SEED,
        reps,
        refactor_ms,
        refactor_gbps: gb / (refactor_ms / 1e3),
        facade_refactor_ms,
        retrieve,
        roi_store_ms,
        facade_roi_store_ms,
        concurrent,
        remote,
        server,
        huffman,
        kernels,
        ingest_extent,
        ingest,
    };
    let json = serde_json::to_vec(&report).expect("report serializes");
    let out_dir = std::env::var("HPMDR_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&out_dir).join(format!("BENCH_pr{pr}.json"));
    std::fs::write(&path, &json).expect("report writes");
    println!("{}", String::from_utf8_lossy(&json));
    eprintln!("wrote {}", path.display());
}
