//! # hpmdr-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§7); run
//! them all with `scripts` or individually:
//!
//! ```text
//! cargo run -p hpmdr-bench --release --bin table1
//! cargo run -p hpmdr-bench --release --bin fig6     # ... fig7..fig14, table2_3
//! ```
//!
//! Measurement policy (also documented in EXPERIMENTS.md):
//!
//! * **Algorithmic results** (retrieval sizes, bitrates, iteration counts,
//!   error-control validation) are *exact reproductions* — they depend
//!   only on the algorithms, which are fully implemented.
//! * **GPU kernel throughput** comes from the warp-level cost model of
//!   `hpmdr-device` evaluated on closed-form kernel event counts; CPU
//!   wall-clock of the same kernels is reported alongside as a sanity
//!   signal. Expect *shape* agreement with the paper (orderings,
//!   crossovers, relative factors), not absolute GB/s.
//! * **Pipeline and multi-device results** replay the Figure 4 DAGs in
//!   the discrete-event simulator with stage durations from [`model`].

pub mod model;
pub mod report;

pub use model::{qoi_loop_time, reconstruct_stage_times, refactor_stage_times};
pub use report::{write_json, Table};
