//! Known-bad fixture for the wire-path rules: an unchecked index (L3)
//! and an unchecked wire-derived allocation (L5). Line numbers are
//! pinned by the integration tests.

pub fn unchecked_index(buf: &[u8], declared: usize) -> u8 {
    buf[declared] // L3: index never bounds-related in this fn
}

pub fn unchecked_alloc(declared: usize) -> Vec<u8> {
    vec![0u8; declared] // L5: wire-derived size, no limit check
}
