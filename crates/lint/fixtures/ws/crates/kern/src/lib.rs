//! Known-bad fixture for L2: a `#[target_feature]` kernel called from
//! a plain function in a module that is not a configured dispatch
//! module. The SAFETY comments are present so only L2 fires here.

#[target_feature(enable = "avx2")]
// SAFETY: fixture kernel; real callers verify avx2 first.
pub unsafe fn kernel(x: &mut [u32; 4]) {
    x[0] = x[0].wrapping_add(1);
}

pub fn leaky_caller(x: &mut [u32; 4]) {
    // SAFETY: deliberately wrong — this module is not a dispatch
    // module, so this call must be flagged by L2.
    unsafe { kernel(x) } // L2: tf kernel called outside dispatch
}
