//! Known-bad fixture: one L1, one L3, one L4 violation, each at a
//! line the integration tests pin. Edit with care — the tests assert
//! exact line numbers.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn uncommented_unsafe(p: *const u8) -> u8 {
    unsafe { *p } // L1: no SAFETY comment
}

pub fn panicky(x: Option<u8>) -> u8 {
    x.unwrap() // L3: unwrap in library code of a panic-free crate
}

pub fn silent_relaxed(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed); // L4: no ORDERING comment
}
