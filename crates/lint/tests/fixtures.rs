//! End-to-end tests over the known-bad fixture workspace in
//! `fixtures/ws`: every rule must fire with the right id at the pinned
//! line, the binary must exit non-zero, and the ratcheted baseline
//! must block growth while locking in improvements.

use hpmdr_lint::{run, Options};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hpmdr-lint"))
}

/// Copy the fixture workspace into a scratch directory the test may
/// mutate (baseline rewrites, injected violations).
fn scratch_copy(name: &str) -> PathBuf {
    let dst = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dst.exists() {
        std::fs::remove_dir_all(&dst).expect("clear stale scratch copy");
    }
    copy_tree(&fixture_ws(), &dst);
    dst
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create scratch dir");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("fixture dir entry");
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy fixture file");
        }
    }
}

#[test]
fn every_rule_fires_on_the_fixture_workspace() {
    let outcome = run(&Options::new(fixture_ws())).expect("fixture run");
    assert_eq!(
        outcome.exit_code, 1,
        "empty baseline must make the run fail"
    );
    let got: Vec<(String, String, u32)> = outcome
        .findings
        .iter()
        .map(|f| (f.rule.as_str().to_string(), f.file.clone(), f.line))
        .collect();
    let expect = [
        ("L1", "crates/core/src/lib.rs", 8u32),
        ("L2", "crates/kern/src/lib.rs", 14),
        ("L3", "crates/core/src/lib.rs", 12),
        ("L3", "crates/netstore/src/wire.rs", 6),
        ("L4", "crates/core/src/lib.rs", 16),
        ("L5", "crates/netstore/src/wire.rs", 10),
    ];
    for (rule, file, line) in expect {
        assert!(
            got.contains(&(rule.to_string(), file.to_string(), line)),
            "expected {rule} at {file}:{line}, got {got:?}"
        );
    }
    assert_eq!(got.len(), expect.len(), "no extra findings: {got:?}");
}

#[test]
fn binary_exits_nonzero_and_writes_the_report() {
    let report = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fixture-report.txt");
    let out = bin()
        .args(["--root"])
        .arg(fixture_ws())
        .args(["--report"])
        .arg(&report)
        .output()
        .expect("spawn hpmdr-lint");
    assert_eq!(out.status.code(), Some(1));
    let text = std::fs::read_to_string(&report).expect("report written");
    for tag in ["[L1]", "[L2]", "[L3]", "[L4]", "[L5]"] {
        assert!(text.contains(tag), "report missing {tag}:\n{text}");
    }
    assert!(text.contains("RATCHET VIOLATIONS"));
}

#[test]
fn allow_growth_bootstraps_a_baseline_then_the_run_is_clean() {
    let ws = scratch_copy("lint-bootstrap");
    let toml = ws.join("lint.toml");

    // Plain --update-baseline must refuse: every entry would grow.
    let refused = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline"])
        .output()
        .expect("spawn");
    assert_eq!(refused.status.code(), Some(1));
    let before = std::fs::read_to_string(&toml).expect("read lint.toml");
    assert!(
        !before.contains("[[debt]]"),
        "refused update must not write debt"
    );

    // --allow-growth bootstraps the debt and the run goes green.
    let grown = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline", "--allow-growth"])
        .output()
        .expect("spawn");
    assert_eq!(grown.status.code(), Some(0));
    let after = std::fs::read_to_string(&toml).expect("read lint.toml");
    assert!(after.contains("[[debt]]"));

    let clean = bin().args(["--root"]).arg(&ws).output().expect("spawn");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "debt within baseline is accepted"
    );
}

#[test]
fn ratchet_blocks_a_new_violation() {
    let ws = scratch_copy("lint-ratchet");
    let grown = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline", "--allow-growth"])
        .output()
        .expect("spawn");
    assert_eq!(grown.status.code(), Some(0));

    // Inject one more L3 into an already-indebted file.
    let lib = ws.join("crates/core/src/lib.rs");
    let mut src = std::fs::read_to_string(&lib).expect("read fixture lib.rs");
    src.push_str("\npub fn extra(y: Option<u8>) -> u8 {\n    y.unwrap()\n}\n");
    std::fs::write(&lib, src).expect("inject violation");

    let out = bin().args(["--root"]).arg(&ws).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1), "growth past baseline must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[L3]"), "violation group prints: {stdout}");

    // And --update-baseline still refuses to absorb it.
    let toml_before = std::fs::read_to_string(ws.join("lint.toml")).expect("read");
    let refused = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline"])
        .output()
        .expect("spawn");
    assert_eq!(refused.status.code(), Some(1));
    let toml_after = std::fs::read_to_string(ws.join("lint.toml")).expect("read");
    assert_eq!(
        toml_before, toml_after,
        "refused update must not touch lint.toml"
    );
}

#[test]
fn update_baseline_locks_in_an_improvement() {
    let ws = scratch_copy("lint-improve");
    let grown = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline", "--allow-growth"])
        .output()
        .expect("spawn");
    assert_eq!(grown.status.code(), Some(0));

    // Fix the L3 unwrap in core.
    let lib = ws.join("crates/core/src/lib.rs");
    let src = std::fs::read_to_string(&lib).expect("read fixture lib.rs");
    let fixed = src.replace(
        "x.unwrap() // L3: unwrap in library code of a panic-free crate",
        "x.unwrap_or(0)",
    );
    assert_ne!(src, fixed, "fixture unwrap line must exist");
    std::fs::write(&lib, &fixed).expect("write fix");

    let locked = bin()
        .args(["--root"])
        .arg(&ws)
        .args(["--update-baseline"])
        .output()
        .expect("spawn");
    assert_eq!(
        locked.status.code(),
        Some(0),
        "ratcheting down is always allowed"
    );
    let toml = std::fs::read_to_string(ws.join("lint.toml")).expect("read");
    assert!(
        !toml.contains("rule = \"L3\"\nfile = \"crates/core/src/lib.rs\""),
        "clean (rule, file) entry must be dropped:\n{toml}"
    );

    // Reintroducing the unwrap now trips the tightened ratchet.
    std::fs::write(&lib, &src).expect("restore violation");
    let out = bin().args(["--root"]).arg(&ws).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}
