//! The `hpmdr-lint` binary: run the five workspace lints against the
//! ratcheted baseline. See the library crate docs and ARCHITECTURE.md
//! ("static analysis & safety contracts") for the rules themselves.

use hpmdr_lint::{report::render_finding, run, Options};
use std::path::PathBuf;

const USAGE: &str = "\
hpmdr-lint — workspace static analysis for the safety contracts

USAGE:
    hpmdr-lint [OPTIONS]

OPTIONS:
    --root <DIR>         workspace root (default: auto-detected from cwd)
    --baseline <FILE>    lint.toml path (default: <root>/lint.toml)
    --update-baseline    rewrite lint.toml with current counts (ratchets
                         down only; refuses to raise any entry)
    --allow-growth       let --update-baseline raise counts — bootstrap
                         for newly added rules only
    --report <FILE>      write the full diagnostic report (CI artifact)
    -h, --help           this text

EXIT CODES:
    0  clean, or within the accepted baseline
    1  ratchet violation (or --update-baseline refused growth)
    2  configuration or I/O error
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut allow_growth = false;
    let mut report_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--update-baseline" => update_baseline = true,
            "--allow-growth" => allow_growth = true,
            "--report" => report_path = args.next().map(PathBuf::from),
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("unknown argument {other:?}\n\n{USAGE}");
                return 2;
            }
        }
    }
    let root = match root.or_else(detect_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not find the workspace root (a directory with lint.toml or a \
                 workspace Cargo.toml); pass --root"
            );
            return 2;
        }
    };
    let mut opts = Options::new(root);
    if let Some(b) = baseline {
        opts.lint_toml = b;
    }
    opts.update_baseline = update_baseline;
    opts.allow_growth = allow_growth;
    opts.report_path = report_path;

    let outcome = match run(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hpmdr-lint: {e}");
            return 2;
        }
    };

    // Violations print in full; accepted debt only as a summary line.
    for group in outcome.ratchet.violations.values() {
        for f in group {
            println!("{}", render_finding(f));
        }
    }
    if outcome.ratchet.failed() {
        for ((rule, file), group) in &outcome.ratchet.violations {
            eprintln!(
                "ratchet violation: {} findings for {} in {file} (baseline allows fewer)",
                group.len(),
                rule.as_str()
            );
        }
        if update_baseline && !allow_growth {
            eprintln!(
                "--update-baseline refused: counts may only decrease; fix the new \
                       violations (or, when onboarding a new rule, use --allow-growth)"
            );
        }
    } else {
        let debt = outcome.findings.len();
        println!(
            "hpmdr-lint: OK — {} files scanned, {debt} finding(s), all within the \
             baseline (budget {})",
            outcome.files_scanned, outcome.baseline_total
        );
        for ((rule, file), cur, base) in &outcome.ratchet.improvements {
            println!(
                "  improvement: {} in {file}: {base} -> {cur} (run --update-baseline to lock in)",
                rule.as_str()
            );
        }
        for (rule, file) in &outcome.ratchet.stale {
            println!(
                "  stale baseline entry: {} in {file} is now clean (run --update-baseline)",
                rule.as_str()
            );
        }
    }
    outcome.exit_code
}

/// Walk up from the current directory to a directory containing
/// `lint.toml`, or failing that a workspace-root `Cargo.toml`.
fn detect_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let mut dir: &std::path::Path = &cwd;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}
