//! A hand-rolled Rust lexer: just enough of the language to tell code
//! from comments and strings, with line numbers on every token.
//!
//! The offline build has no `syn`/`proc-macro2`, and the lints in this
//! crate only need a faithful *token* view — identifiers, punctuation,
//! literals, and (crucially) comments kept as first-class tokens so the
//! rules can check comment adjacency (`// SAFETY:`, `// ORDERING:`,
//! waivers). The tricky parts a grep-based pass gets wrong are handled
//! here once:
//!
//! - line comments vs `///` / `//!` doc comments (kept distinguishable
//!   via the token text, which includes the comment sigil),
//! - block comments with **nesting** (`/* a /* b */ c */`),
//! - string literals with escapes, byte strings,
//! - raw strings `r"…"` / `r#"…"#` (any hash depth) whose bodies may
//!   contain `unsafe`, `unwrap()`, or comment sigils without producing
//!   tokens,
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped and
//!   unicode chars,
//! - raw identifiers (`r#match`).
//!
//! The lexer is infallible: unexpected bytes become one-character
//! [`TokKind::Punct`] tokens and an unterminated literal simply runs to
//! end of file. A lint must never panic on the code it audits.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized, so
    /// `r#match` lexes as the ident `match`).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String or byte-string literal, escapes resolved lexically
    /// (the token text is the raw source slice including quotes).
    Str,
    /// Raw (byte) string literal, any hash depth.
    RawStr,
    /// Character or byte-character literal.
    Char,
    /// A `//…` comment, including `///` and `//!` doc comments; the
    /// token text starts with the full sigil so consumers can tell
    /// plain comments from doc comments.
    LineComment,
    /// A `/*…*/` comment (nesting handled); may span multiple lines.
    BlockComment,
    /// Any single punctuation character (`{`, `}`, `.`, `!`, …).
    Punct,
}

/// One lexed token: kind, verbatim source text, and 1-based line of its
/// first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier/keyword `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True for comment tokens of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Last 1-based line this token touches (tokens other than block
    /// comments and multi-line strings are single-line).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.bytes().filter(|&b| b == b'\n').count() as u32
    }
}

/// Lex `src` into a token stream. Never fails: malformed input degrades
/// to `Punct` tokens or an end-of-file-terminated literal.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        s: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(src)
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self, src: &str) -> Vec<Tok> {
        while self.i < self.s.len() {
            let start = self.i;
            let line = self.line;
            let b = self.s[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokKind::LineComment, src, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokKind::BlockComment, src, start, line);
                }
                b'r' | b'b' if self.raw_string_ahead() => {
                    self.take_raw_string();
                    self.push(TokKind::RawStr, src, start, line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.i += 1;
                    self.take_quoted(b'"');
                    self.push(TokKind::Str, src, start, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.i += 1;
                    self.take_quoted(b'\'');
                    self.push(TokKind::Char, src, start, line);
                }
                b'r' if self.peek(1) == Some(b'#') && self.ident_start(2) => {
                    // Raw identifier r#match: skip the sigil, lex the
                    // ident, and store the normalized name.
                    self.i += 2;
                    let id_start = self.i;
                    self.take_ident();
                    let text = src[id_start..self.i].to_string();
                    self.out.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                    });
                }
                b'"' => {
                    self.take_quoted(b'"');
                    self.push(TokKind::Str, src, start, line);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.i += 1;
                        self.take_ident();
                        self.push(TokKind::Lifetime, src, start, line);
                    } else {
                        self.take_quoted(b'\'');
                        self.push(TokKind::Char, src, start, line);
                    }
                }
                b'0'..=b'9' => {
                    self.take_number();
                    self.push(TokKind::Num, src, start, line);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.take_ident();
                    self.push(TokKind::Ident, src, start, line);
                }
                _ => {
                    self.i += 1;
                    self.push(TokKind::Punct, src, start, line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, src: &str, start: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: src[start..self.i].to_string(),
            line,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn ident_start(&self, ahead: usize) -> bool {
        matches!(self.peek(ahead), Some(c) if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80)
    }

    /// At `r` or `b`: does a raw string (`r"`, `r#`+…+`"`, `br"`, …)
    /// start here? (`r#ident` is a raw identifier, not a raw string.)
    fn raw_string_ahead(&self) -> bool {
        let mut j = 0;
        if self.peek(j) == Some(b'b') {
            j += 1;
        }
        if self.peek(j) != Some(b'r') {
            return false;
        }
        j += 1;
        while self.peek(j) == Some(b'#') {
            j += 1;
        }
        self.peek(j) == Some(b'"')
    }

    /// `'` starts a lifetime unless it is a char literal. A char
    /// literal is `'x'`, `'\…'`, or `'🦀'`; a lifetime is `'` followed
    /// by an identifier **not** closed by another `'`.
    fn lifetime_ahead(&self) -> bool {
        match self.peek(1) {
            Some(b'\\') => false,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // Scan the identifier; if it ends at a closing quote it
                // was a char literal like 'a'.
                let mut j = 1;
                while matches!(self.peek(j), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                    j += 1;
                }
                self.peek(j) != Some(b'\'')
            }
            _ => false,
        }
    }

    fn take_line_comment(&mut self) {
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn take_block_comment(&mut self) {
        // Consume `/*`, then run to the matching `*/` honoring nesting.
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.s.len() && depth > 0 {
            match self.s[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    fn take_quoted(&mut self, quote: u8) {
        // At the opening quote. Consume through the closing quote,
        // honoring backslash escapes; unterminated runs to EOF.
        self.i += 1;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i = (self.i + 2).min(self.s.len()),
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c == quote => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    fn take_raw_string(&mut self) {
        // At `r`/`b`. Count hashes, then run to `"` followed by that
        // many hashes; no escapes inside.
        if self.s[self.i] == b'b' {
            self.i += 1;
        }
        self.i += 1; // r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    let mut j = 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(j) == Some(b'#') {
                        seen += 1;
                        j += 1;
                    }
                    self.i += 1 + seen;
                    if seen == hashes {
                        return;
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    fn take_number(&mut self) {
        // Digits, underscores, base prefixes, suffixes, and a fraction/
        // exponent part. Precision beyond "it is one numeric token" is
        // not needed by any rule.
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.i += 1;
        }
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.i += 1;
            }
        }
        // Exponent sign: `1e-5` leaves us after `e`? No — the alnum
        // loop above consumed `e`; pick up a `+`/`-` digit tail.
        if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && matches!(self.s.get(self.i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            && matches!(self.peek(1), Some(c) if c.is_ascii_digit())
        {
            self.i += 1;
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.i += 1;
            }
        }
    }

    fn take_ident(&mut self) {
        while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_string_body_produces_no_tokens() {
        let toks = kinds(r##"let s = r#"unsafe { unwrap() } // SAFETY:"#;"##);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("/* a /* unsafe */ b */ fn");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("/* one\ntwo */\nfn x() {}\n");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].end_line(), 2);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("'a 'static '_ 'x' '\\n' b'z'");
        let got: Vec<TokKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            got,
            [
                TokKind::Lifetime,
                TokKind::Lifetime,
                TokKind::Lifetime,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char
            ]
        );
    }

    #[test]
    fn raw_identifier_normalizes() {
        let toks = kinds("r#unsafe");
        assert_eq!(toks[0], (TokKind::Ident, "unsafe".into()));
    }

    #[test]
    fn doc_comment_sigils_are_preserved() {
        let toks = kinds("//! inner\n/// outer\n// plain\n");
        assert!(toks[0].1.starts_with("//!"));
        assert!(toks[1].1.starts_with("///"));
        assert!(toks[2].1.starts_with("// "));
    }

    #[test]
    fn strings_with_escapes_do_not_leak() {
        let toks = kinds(r#"let s = "a \" unsafe \" b";"#);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn unterminated_literal_reaches_eof_without_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokKind::Str);
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        let toks = kinds("1.0e-5 0xFF_u32 1_000usize 2.5f64");
        assert!(toks.iter().all(|(k, _)| *k == TokKind::Num));
        assert_eq!(toks.len(), 4);
    }
}
