//! **L1 — unsafe-safety-comment.** Every `unsafe` block, function,
//! trait, or impl must be immediately preceded (or trailed on the same
//! line) by a plain `// SAFETY:` comment stating the invariant being
//! relied on and who upholds it.
//!
//! `unsafe` appearing in a function-*pointer type* (`unsafe fn(…)`)
//! carries no obligation at the type itself — the obligation sits at
//! the call through the pointer — so it is exempt. Doc comments do not
//! satisfy the rule: `//! SAFETY` documents a module for readers,
//! `// SAFETY:` is an auditable claim bound to one site.

use super::{emit, Finding, RuleId};
use crate::cursor::FileCtx;

/// Run L1 over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for pos in 0..ctx.code.len() {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = ctx.next_code(pos, 1);
        // `unsafe fn(…)` with no name = function-pointer type.
        if next.is_some_and(|n| n.is_ident("fn"))
            && ctx.next_code(pos, 2).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let site = match next {
            Some(n) if n.is_ident("fn") => "unsafe fn",
            Some(n) if n.is_ident("impl") => "unsafe impl",
            Some(n) if n.is_ident("trait") => "unsafe trait",
            Some(n) if n.is_punct('{') => "unsafe block",
            _ => "unsafe",
        };
        if ctx.has_adjacent_marker(t.line, "SAFETY:") {
            continue;
        }
        emit(
            out,
            ctx,
            Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RuleId::L1,
                message: format!("{site} without an adjacent `// SAFETY:` comment"),
                hint: "state the invariant this site relies on and who upholds it in a \
                       `// SAFETY:` comment on the line above (attributes may sit between)"
                    .to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("t.rs", src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn bare_unsafe_block_is_flagged_with_line() {
        let f = run("fn f() {\n    unsafe { g() };\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::L1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn adjacent_safety_comment_passes() {
        assert!(run("// SAFETY: g has no preconditions here\nunsafe { g() };\n").is_empty());
        assert!(run("let x = unsafe { g() }; // SAFETY: trailing form\n").is_empty());
    }

    #[test]
    fn module_doc_safety_does_not_count() {
        let f = run("//! SAFETY: module-wide claims are not site claims\nunsafe fn k() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unsafe_fn_pointer_type_is_exempt() {
        assert!(run("pub type F = unsafe fn(&mut [u32; 32]);\n").is_empty());
    }

    #[test]
    fn unsafe_impl_and_trait_need_comments() {
        let f = run("unsafe impl Send for X {}\nunsafe trait T {}\n");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("unsafe impl"));
        assert!(f[1].message.contains("unsafe trait"));
    }

    #[test]
    fn unsafe_in_raw_string_is_not_a_site() {
        assert!(run(r###"fn f() { let s = r#"unsafe { x }"#; }"###).is_empty());
    }

    #[test]
    fn safety_comment_above_attributes_passes() {
        let src = "// SAFETY: caller verified avx2 via Isa dispatch\n\
                   #[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        assert!(run(src).is_empty());
    }
}
