//! **L2 — target-feature containment.** A `#[target_feature(enable =
//! "…")]` function compiles against instructions the host may not
//! have; calling one is only sound where the ISA is known present.
//! This rule confines such calls to (a) other `#[target_feature]`
//! functions of the *same ISA family* — the caller already established
//! availability — or (b) allowlisted dispatch modules, whose job is to
//! gate on the pinned `hpmdr_simd::Isa` before jumping to a kernel.
//!
//! An allowlisted dispatch module that never mentions `Isa` has lost
//! the property the allowlist encodes, so that degenerate state is a
//! finding too. Calls through function pointers are invisible to a
//! token-level pass; the dispatch-module allowlist is what keeps the
//! pointer-table idiom (`TransposeFn`) auditable, because the tables
//! are built inside those modules.

use super::{emit, Finding, RuleId};
use crate::cursor::{Family, FileCtx};
use std::collections::{HashMap, HashSet};

/// Workspace-wide index of `#[target_feature]` functions: name → the
/// ISA families it is compiled for (a name may have per-ISA variants).
pub type TfIndex = HashMap<String, HashSet<Family>>;

/// Collect one file's `#[target_feature]` functions into `index`.
pub fn index_file(ctx: &FileCtx, index: &mut TfIndex) {
    for scope in &ctx.scopes {
        if scope.kind == "fn" {
            if let (Some(name), Some(fam)) = (&scope.name, scope.target_feature) {
                index.entry(name.clone()).or_default().insert(fam);
            }
        }
    }
}

/// Run L2 over one file against the workspace index.
pub fn check(ctx: &FileCtx, index: &TfIndex, dispatch_modules: &[String], out: &mut Vec<Finding>) {
    let allowlisted = dispatch_modules.iter().any(|m| m == &ctx.path);
    if allowlisted {
        let mentions_isa = ctx.code.iter().any(|&i| ctx.toks[i].is_ident("Isa"));
        if !mentions_isa {
            out.push(Finding {
                file: ctx.path.clone(),
                line: 1,
                rule: RuleId::L2,
                message: "allowlisted dispatch module never references `Isa`".to_string(),
                hint: "a dispatch module earns its allowlist entry by gating kernel calls \
                       on the pinned `Isa`; gate here or drop the module from \
                       `dispatch_modules` in lint.toml"
                    .to_string(),
            });
        }
        return;
    }
    for pos in 0..ctx.code.len() {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        let Some(families) = index.get(&t.text) else {
            continue;
        };
        if !ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // The definition itself (`unsafe fn name(`), not a call.
        if ctx.prev_code(pos, 1).is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        // A method of the same name (`x.len()`-style) is not the
        // free-function kernel.
        if ctx.prev_code(pos, 1).is_some_and(|p| p.is_punct('.')) {
            continue;
        }
        let caller_fam = ctx.enclosing_fn(pos).and_then(|f| f.target_feature);
        if caller_fam.is_some_and(|fam| families.contains(&fam)) {
            continue;
        }
        emit(
            out,
            ctx,
            Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RuleId::L2,
                message: format!(
                    "`{}` is #[target_feature] but the caller is {}",
                    t.text,
                    match caller_fam {
                        Some(_) => "a #[target_feature] fn of a different ISA family",
                        None => "not a #[target_feature] fn",
                    }
                ),
                hint: "call it from a same-family #[target_feature] fn, or move the call \
                       into an Isa-gated dispatch module listed in lint.toml \
                       `dispatch_modules`"
                    .to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, dispatch: &[&str]) -> Vec<Finding> {
        let ctx = FileCtx::new("t.rs", src);
        let mut index = TfIndex::new();
        index_file(&ctx, &mut index);
        let mut out = Vec::new();
        let dispatch: Vec<String> = dispatch.iter().map(|s| s.to_string()).collect();
        check(&ctx, &index, &dispatch, &mut out);
        out
    }

    const KERNEL: &str =
        "#[target_feature(enable = \"avx2\")]\nunsafe fn kern(x: u32) -> u32 { x }\n";

    #[test]
    fn call_from_plain_fn_is_flagged() {
        let src = format!("{KERNEL}fn caller() {{ unsafe {{ kern(1) }}; }}\n");
        let f = run(&src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::L2);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn call_from_same_family_tf_fn_passes() {
        let src = format!(
            "{KERNEL}#[target_feature(enable = \"avx2\")]\nunsafe fn outer() {{ kern(1); }}\n"
        );
        assert!(run(&src, &[]).is_empty());
    }

    #[test]
    fn call_from_other_family_tf_fn_is_flagged() {
        let src = format!(
            "{KERNEL}#[target_feature(enable = \"neon\")]\nunsafe fn outer() {{ kern(1); }}\n"
        );
        let f = run(&src, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("different ISA family"));
    }

    #[test]
    fn dispatch_module_allowlist_passes_when_isa_gated() {
        let src = format!("{KERNEL}fn dispatch(isa: Isa) {{ unsafe {{ kern(1) }}; }}\n");
        assert!(run(&src, &["t.rs"]).is_empty());
    }

    #[test]
    fn dispatch_module_without_isa_reference_is_flagged() {
        let src = format!("{KERNEL}fn dispatch() {{ unsafe {{ kern(1) }}; }}\n");
        let f = run(&src, &["t.rs"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never references"));
    }

    #[test]
    fn definition_itself_is_not_a_call() {
        assert!(run(KERNEL, &[]).is_empty());
    }
}
