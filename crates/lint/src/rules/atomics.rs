//! **L4 — atomics-ordering audit.** `Ordering::Relaxed` is correct for
//! monotonic counters and gauges, and subtly wrong the moment the value
//! *guards other data* — then the load/store needs Acquire/Release so
//! the data it protects is visible. With 50+ relaxed operations across
//! the ingest pipeline and server, "which ones are counters?" must be
//! answerable without re-deriving the proof: every `Ordering::Relaxed`
//! carries an adjacent `// ORDERING:` comment naming why relaxed is
//! enough, or the site is a finding.
//!
//! Importing `Relaxed` directly (`use …::Ordering::Relaxed`) would hide
//! call sites from this audit, so the import itself is a finding: the
//! project convention is to write `Ordering::Relaxed` at the site.

use super::{emit, Finding, RuleId};
use crate::cursor::FileCtx;

/// Run L4 over one file. `allow_files` lists workspace-relative paths
/// whose relaxed sites are accepted wholesale (empty in this repo —
/// annotations are the norm).
pub fn check(ctx: &FileCtx, allow_files: &[String], out: &mut Vec<Finding>) {
    if allow_files.iter().any(|f| f == &ctx.path) {
        return;
    }
    for pos in 0..ctx.code.len() {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        if !t.is_ident("Relaxed") {
            continue;
        }
        if ctx.in_test(pos) {
            continue;
        }
        // Part of a `use` import? Walk back to the statement head.
        let mut back = 1usize;
        let mut is_import = false;
        while back <= 24 {
            match ctx.prev_code(pos, back) {
                Some(p) if p.is_ident("use") => {
                    is_import = true;
                    break;
                }
                Some(p) if p.is_punct(';') => break,
                Some(_) => back += 1,
                None => break,
            }
        }
        if is_import {
            emit(
                out,
                ctx,
                Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RuleId::L4,
                    message: "`Relaxed` imported directly; call sites become invisible to \
                              the ordering audit"
                        .to_string(),
                    hint: "import `Ordering` and write `Ordering::Relaxed` at each site so \
                           every relaxed operation is auditable in place"
                        .to_string(),
                },
            );
            continue;
        }
        // Only qualified uses count as operations: `Ordering::Relaxed`.
        let qualified = ctx.prev_code(pos, 1).is_some_and(|p| p.is_punct(':'))
            && ctx.prev_code(pos, 2).is_some_and(|p| p.is_punct(':'))
            && ctx
                .prev_code(pos, 3)
                .is_some_and(|p| p.is_ident("Ordering"));
        if !qualified {
            continue;
        }
        if ctx.has_adjacent_marker(t.line, "ORDERING:") {
            continue;
        }
        emit(
            out,
            ctx,
            Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RuleId::L4,
                message: "`Ordering::Relaxed` without an adjacent `// ORDERING:` \
                          justification"
                    .to_string(),
                hint: "say why relaxed suffices (counter/gauge, no data guarded) in a \
                       `// ORDERING:` comment — or upgrade to Acquire/Release if this \
                       value publishes other writes"
                    .to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("t.rs", src);
        let mut out = Vec::new();
        check(&ctx, &[], &mut out);
        out
    }

    #[test]
    fn bare_relaxed_is_flagged_with_line() {
        let f = run("fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RuleId::L4, 2));
    }

    #[test]
    fn ordering_comment_same_line_or_above_passes() {
        let above =
            "fn f(c: &AtomicU64) {\n    // ORDERING: monotonic counter, guards nothing\n    \
                     c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run(above).is_empty());
        let trailing =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // ORDERING: counter\n}\n";
        assert!(run(trailing).is_empty());
    }

    #[test]
    fn relaxed_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn direct_import_is_flagged() {
        let f = run("use std::sync::atomic::Ordering::Relaxed;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("imported directly"));
    }

    #[test]
    fn allow_file_suppresses() {
        let ctx = FileCtx::new(
            "t.rs",
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n",
        );
        let mut out = Vec::new();
        check(&ctx, &["t.rs".to_string()], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn other_orderings_are_untouched() {
        assert!(run("fn f(c: &AtomicU64) { c.load(Ordering::Acquire); }\n").is_empty());
    }
}
