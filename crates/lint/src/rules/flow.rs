//! Tiny intra-function dataflow helpers shared by the panic-freedom
//! indexing check (L3) and the wire-allocation rule (L5).
//!
//! The unit of reasoning is a **path**: a maximal `a.b.c` / `a::b`
//! identifier chain, normalized to dot-separated text. A path is
//! *checked* inside a function when it appears in a comparison (or a
//! `.min(…)` clamp) before use; it is *limit-like* when its name or
//! shape marks it as a bound rather than a payload-derived quantity —
//! a `SCREAMING_CASE` constant, a `max_*`/`*_limit`-style name, a
//! numeric literal, or a `.len()` of an already-materialized buffer.
//!
//! This is a heuristic, not a proof: it is tuned so that the idiomatic
//! check-before-allocate shape (`if n > limits.max_payload { reject }`
//! … `vec![0u8; n]`) passes, and an allocation from an unvalidated
//! wire-read length does not. Findings it gets wrong are waivable with
//! a justified `lint:allow`.

use crate::cursor::FileCtx;
use crate::lexer::TokKind;
use std::collections::HashSet;

/// One path occurrence inside a token range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathOcc {
    /// Normalized dot-separated text (`limits.max_header`).
    pub text: String,
    /// Code position (index into `FileCtx::code`) of the first segment.
    pub start: usize,
    /// Code position just *after* the last segment.
    pub end: usize,
    /// True when the path is immediately called (`foo(…)`, `x.len(…)`).
    pub is_call: bool,
}

const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str",
];

const NON_PATH_KEYWORDS: &[&str] = &[
    "as", "if", "else", "in", "mut", "ref", "let", "return", "match", "for", "while", "loop",
    "true", "false", "fn", "move", "unsafe", "dyn", "impl", "where", "break", "continue",
];

fn is_separator(ctx: &FileCtx, pos: usize) -> Option<usize> {
    // `.` is one token; `::` is two `:` puncts. Returns how many code
    // tokens the separator occupies.
    let t = ctx.next_code(pos, 0)?;
    if t.is_punct('.') {
        Some(1)
    } else if t.is_punct(':') && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct(':')) {
        Some(2)
    } else {
        None
    }
}

/// Read a path starting at code position `pos`; `None` when `pos` is
/// not an identifier usable as a path head.
pub fn read_path(ctx: &FileCtx, pos: usize) -> Option<PathOcc> {
    let head = ctx.next_code(pos, 0)?;
    if head.kind != TokKind::Ident || NON_PATH_KEYWORDS.contains(&head.text.as_str()) {
        return None;
    }
    let mut segs = vec![head.text.clone()];
    let mut p = pos + 1;
    while let Some(sep) = is_separator(ctx, p) {
        let Some(next) = ctx.next_code(p, sep) else {
            break;
        };
        if next.kind != TokKind::Ident {
            break;
        }
        segs.push(next.text.clone());
        p += sep + 1;
    }
    let is_call = ctx.next_code(p, 0).is_some_and(|t| t.is_punct('('));
    Some(PathOcc {
        text: segs.join("."),
        start: pos,
        end: p,
        is_call,
    })
}

/// Does this name look like a bound rather than a payload quantity?
pub fn limitish_name(path: &str) -> bool {
    path.split('.').any(|seg| {
        let screaming = seg.len() >= 2
            && seg.chars().any(|c| c.is_ascii_uppercase())
            && seg
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
        let lower = seg.to_ascii_lowercase();
        screaming
            || lower.contains("max")
            || lower.contains("limit")
            || lower.contains("cap")
            || lower.contains("bound")
            || lower.contains("budget")
    })
}

/// One comparison operand: a path, a literal, or nothing recognizable.
#[derive(Debug, Clone)]
pub enum Operand {
    /// A path (possibly a call like `buf.len()`).
    Path(PathOcc),
    /// A numeric literal.
    Literal,
    /// Unrecognized shape (complex expression).
    Opaque,
}

impl Operand {
    /// Is this operand a bound the other side can be checked against?
    pub fn is_limitish(&self) -> bool {
        match self {
            Operand::Literal => true,
            Operand::Path(p) => {
                // `buf.len()` counts: the length of already-allocated
                // data is itself bounded.
                limitish_name(&p.text) || (p.is_call && p.text.ends_with(".len"))
            }
            Operand::Opaque => false,
        }
    }

    fn checked_text(&self) -> Option<&str> {
        match self {
            Operand::Path(p) if !p.is_call => Some(&p.text),
            _ => None,
        }
    }
}

/// Read the operand that *ends* just before code position `pos`
/// (exclusive), skipping one trailing `as <type>` cast and one balanced
/// call-parens group.
fn operand_back(ctx: &FileCtx, pos: usize) -> Operand {
    let mut p = pos;
    // `x as u64 <` — step back over the cast.
    if p >= 2
        && ctx
            .prev_code(p, 1)
            .is_some_and(|t| t.kind == TokKind::Ident && PRIMITIVES.contains(&t.text.as_str()))
        && ctx.prev_code(p, 2).is_some_and(|t| t.is_ident("as"))
    {
        p -= 2;
    }
    let Some(prev) = ctx.prev_code(p, 1) else {
        return Operand::Opaque;
    };
    if prev.kind == TokKind::Num {
        return Operand::Literal;
    }
    let mut is_call = false;
    if prev.is_punct(')') {
        // Walk back over the balanced group to the call name.
        let mut depth = 0i32;
        let mut back = 1usize;
        loop {
            let Some(t) = ctx.prev_code(p, back) else {
                return Operand::Opaque;
            };
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            back += 1;
        }
        p -= back;
        is_call = true;
    }
    // Now expect the last path segment just before `p`; walk segments
    // backward.
    let Some(tail) = ctx.prev_code(p, 1) else {
        return Operand::Opaque;
    };
    if tail.kind != TokKind::Ident || NON_PATH_KEYWORDS.contains(&tail.text.as_str()) {
        return Operand::Opaque;
    }
    let mut start = p - 1;
    loop {
        // A separator before the current head extends the path back.
        let sep_len = if start >= 1 && ctx.prev_code(start, 1).is_some_and(|t| t.is_punct('.')) {
            1
        } else if start >= 2
            && ctx.prev_code(start, 1).is_some_and(|t| t.is_punct(':'))
            && ctx.prev_code(start, 2).is_some_and(|t| t.is_punct(':'))
        {
            2
        } else {
            break;
        };
        let Some(before) = ctx.prev_code(start, sep_len + 1) else {
            break;
        };
        if before.kind != TokKind::Ident || NON_PATH_KEYWORDS.contains(&before.text.as_str()) {
            break;
        }
        start -= sep_len + 1;
    }
    // Collect the segments between `start` and the boundary `p`
    // directly — re-reading forward would greedily run past `p` (for a
    // receiver like `declared` in `declared.min(…)`).
    let segs: Vec<String> = (start..p)
        .filter_map(|q| ctx.next_code(q, 0))
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    if segs.is_empty() {
        return Operand::Opaque;
    }
    Operand::Path(PathOcc {
        text: segs.join("."),
        start,
        end: p,
        is_call,
    })
}

/// Read the operand starting at code position `pos`.
fn operand_fwd(ctx: &FileCtx, pos: usize) -> Operand {
    match ctx.next_code(pos, 0) {
        Some(t) if t.kind == TokKind::Num => Operand::Literal,
        Some(t) if t.kind == TokKind::Ident => match read_path(ctx, pos) {
            Some(occ) => Operand::Path(occ),
            None => Operand::Opaque,
        },
        _ => Operand::Opaque,
    }
}

/// How permissive the checked-path collection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Any comparison marks both sides checked, and `for` loop
    /// variables count. Used for the indexing check, where *any* bounds
    /// relationship in the function is accepted.
    Loose,
    /// Only a comparison against a limit-like operand marks the other
    /// side, and only limit-like `.min(…)` clamps count. Used for
    /// allocation sizes, where the check must be against a real cap.
    Strict,
}

/// Collect the paths that are bounds-checked anywhere inside the code
/// position range `lo..hi` (typically a function body).
pub fn checked_paths(
    ctx: &FileCtx,
    lo: usize,
    hi: usize,
    strictness: Strictness,
) -> HashSet<String> {
    let mut checked: HashSet<String> = HashSet::new();
    let mut pos = lo;
    while pos < hi {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        // for <ident> in …  (loop variable is range-bounded)
        if strictness == Strictness::Loose && t.is_ident("for") {
            if let Some(var) = ctx.next_code(pos, 1) {
                if var.kind == TokKind::Ident
                    && ctx.next_code(pos, 2).is_some_and(|t| t.is_ident("in"))
                {
                    checked.insert(var.text.clone());
                }
            }
        }
        // receiver.min(limit)
        if t.is_ident("min")
            && ctx.prev_code(pos, 1).is_some_and(|p| p.is_punct('.'))
            && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('('))
        {
            let inner = operand_fwd(ctx, pos + 2);
            if strictness == Strictness::Loose || inner.is_limitish() {
                if let Some(text) = operand_back(ctx, pos - 1).checked_text() {
                    checked.insert(text.to_string());
                }
            }
        }
        // Comparison operators. `<`/`>` single tokens; composites are
        // handled from their first character.
        let is_cmp_head = |c: char| -> Option<usize> {
            // Returns operand-forward offset past the operator.
            let next_eq = ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('='));
            match c {
                '<' | '>' => {
                    let prev = ctx.prev_code(pos, 1);
                    let next = ctx.next_code(pos, 1);
                    let shift =
                        prev.is_some_and(|p| p.is_punct(c)) || next.is_some_and(|n| n.is_punct(c));
                    let arrow =
                        c == '>' && prev.is_some_and(|p| p.is_punct('-') || p.is_punct('='));
                    if shift || arrow {
                        None
                    } else {
                        Some(if next_eq { 2 } else { 1 })
                    }
                }
                '=' | '!' => {
                    let prev_is_op = ctx.prev_code(pos, 1).is_some_and(|p| {
                        p.is_punct('=') || p.is_punct('!') || p.is_punct('<') || p.is_punct('>')
                    });
                    if next_eq && !prev_is_op {
                        Some(2)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        if t.kind == TokKind::Punct {
            let c = t.text.chars().next().unwrap_or(' ');
            if let Some(skip) = is_cmp_head(c) {
                let left = operand_back(ctx, pos);
                let right = operand_fwd(ctx, pos + skip);
                match strictness {
                    Strictness::Loose => {
                        for op in [&left, &right] {
                            if let Some(text) = op.checked_text() {
                                checked.insert(text.to_string());
                            }
                        }
                    }
                    Strictness::Strict => {
                        if right.is_limitish() {
                            if let Some(text) = left.checked_text() {
                                checked.insert(text.to_string());
                            }
                        }
                        if left.is_limitish() {
                            if let Some(text) = right.checked_text() {
                                checked.insert(text.to_string());
                            }
                        }
                    }
                }
            }
        }
        pos += 1;
    }
    checked
}

/// Paths inside `lo..hi` that would need a bounds check: lowercase,
/// non-call, non-limit-like identifiers chains.
pub fn suspect_paths(ctx: &FileCtx, lo: usize, hi: usize) -> Vec<PathOcc> {
    let mut out = Vec::new();
    let mut pos = lo;
    while pos < hi {
        if let Some(occ) = read_path(ctx, pos) {
            let head_lower = occ
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
            let primitive = occ.text.split('.').all(|s| PRIMITIVES.contains(&s));
            if head_lower && !primitive && !occ.is_call && !limitish_name(&occ.text) {
                pos = occ.end;
                out.push(occ);
                continue;
            }
            pos = occ.end.max(pos + 1);
        } else {
            pos += 1;
        }
    }
    out
}

/// Find the code position of the matching closer for the opener at
/// `open` (`(`/`)`, `[`/`]`, `{`/`}`). Returns `None` when unbalanced.
pub fn matching_close(ctx: &FileCtx, open: usize) -> Option<usize> {
    let (o, c) = match ctx.next_code(open, 0)? {
        t if t.is_punct('(') => ('(', ')'),
        t if t.is_punct('[') => ('[', ']'),
        t if t.is_punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    let mut pos = open;
    loop {
        let t = ctx.next_code(pos, 0)?;
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(pos);
            }
        }
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::FileCtx;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("t.rs", src)
    }

    fn fn_range(c: &FileCtx) -> (usize, usize) {
        let s = c.scopes.iter().find(|s| s.kind == "fn").unwrap();
        (s.open, s.close)
    }

    #[test]
    fn guard_against_limit_field_marks_checked() {
        let c = ctx(
            "fn f() { if header_len > limits.max_header as u64 { return; } \
             let v = vec![0u8; header_len as usize]; }",
        );
        let (lo, hi) = fn_range(&c);
        let checked = checked_paths(&c, lo, hi, Strictness::Strict);
        assert!(checked.contains("header_len"), "checked = {checked:?}");
    }

    #[test]
    fn guard_against_screaming_const_marks_checked() {
        let c = ctx("fn f() { if n <= MAX_BODY { let v = vec![0u8; n]; } }");
        let (lo, hi) = fn_range(&c);
        assert!(checked_paths(&c, lo, hi, Strictness::Strict).contains("n"));
    }

    #[test]
    fn comparison_against_plain_variable_is_not_a_strict_check() {
        let c = ctx("fn f() { if n > other { } let v = vec![0u8; n]; }");
        let (lo, hi) = fn_range(&c);
        assert!(!checked_paths(&c, lo, hi, Strictness::Strict).contains("n"));
        assert!(checked_paths(&c, lo, hi, Strictness::Loose).contains("n"));
    }

    #[test]
    fn len_call_is_a_valid_bound() {
        let c = ctx("fn f(buf: &[u8]) { while got < buf.len() { t(&buf[got..]); } }");
        let (lo, hi) = fn_range(&c);
        assert!(checked_paths(&c, lo, hi, Strictness::Strict).contains("got"));
    }

    #[test]
    fn min_clamp_counts_as_strict_check() {
        let c = ctx("fn f() { let n = declared.min(MAX_TAKE); }");
        let (lo, hi) = fn_range(&c);
        assert!(checked_paths(&c, lo, hi, Strictness::Strict).contains("declared"));
    }

    #[test]
    fn shift_operators_are_not_comparisons() {
        let c = ctx("fn f() { let x = a << b; let y = c >> d; }");
        let (lo, hi) = fn_range(&c);
        assert!(checked_paths(&c, lo, hi, Strictness::Loose).is_empty());
    }

    #[test]
    fn suspects_exclude_constants_and_calls() {
        let c = ctx("fn f() { g(FRAME_BYTES + frame.header.len() + payload_len); }");
        let (lo, hi) = fn_range(&c);
        let suspects: Vec<String> = suspect_paths(&c, lo, hi)
            .into_iter()
            .map(|p| p.text)
            .collect();
        assert_eq!(suspects, ["payload_len"]);
    }

    #[test]
    fn field_paths_normalize_across_dot_and_colons() {
        let c = ctx("fn f() { a.b.c; x::y::z; }");
        let (lo, hi) = fn_range(&c);
        let texts: Vec<String> = suspect_paths(&c, lo, hi)
            .into_iter()
            .map(|p| p.text)
            .collect();
        assert!(texts.contains(&"a.b.c".to_string()));
        assert!(texts.contains(&"x.y.z".to_string()));
    }
}
