//! **L5 — wire-allocation hygiene.** In protocol/wire modules, the
//! check-before-allocate contract: any allocation whose size comes from
//! a wire-read value (`Vec::with_capacity(n)`, `vec![0u8; n]`,
//! `buf.resize(n, 0)`, `reserve(n)`) must be preceded, in the same
//! function, by a comparison of that value against a limit — a
//! `MAX_*`/`*_limit`-named constant or field, a numeric literal cap, or
//! a `.min(LIMIT)` clamp. A hostile peer declaring a 16 EiB payload
//! must cost a preamble read, not an OOM.
//!
//! Sizes built purely from literals, `SCREAMING_CASE` constants, and
//! `.len()` of already-materialized buffers are exempt: those cannot be
//! attacker-amplified beyond memory the process already holds.

use super::flow::{checked_paths, matching_close, suspect_paths, Strictness};
use super::{emit, Finding, RuleId};
use crate::cursor::FileCtx;

/// Run L5 over one wire/protocol file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for pos in 0..ctx.code.len() {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        if ctx.in_test(pos) {
            continue;
        }
        // with_capacity(expr) / resize(expr, fill) / reserve(expr)
        let callish = (t.is_ident("with_capacity")
            || t.is_ident("resize")
            || t.is_ident("reserve")
            || t.is_ident("reserve_exact"))
            && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('('));
        if callish {
            let Some(close) = matching_close(ctx, pos + 1) else {
                continue;
            };
            // For resize, only the first argument is the size.
            let mut hi = close;
            if t.is_ident("resize") {
                let mut depth = 0i32;
                for p in pos + 1..close {
                    let Some(tok) = ctx.next_code(p, 0) else {
                        break;
                    };
                    if tok.is_punct('(') || tok.is_punct('[') {
                        depth += 1;
                    } else if tok.is_punct(')') || tok.is_punct(']') {
                        depth -= 1;
                    } else if tok.is_punct(',') && depth == 1 {
                        hi = p;
                        break;
                    }
                }
            }
            audit_size_expr(ctx, pos, pos + 2, hi, &t.text.clone(), out);
            continue;
        }
        // vec![elem; size]
        if t.is_ident("vec")
            && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('!'))
            && ctx.next_code(pos, 2).is_some_and(|n| n.is_punct('['))
        {
            let Some(close) = matching_close(ctx, pos + 2) else {
                continue;
            };
            // Find the top-level `;` separating element from count.
            let mut depth = 0i32;
            let mut semi = None;
            for p in pos + 2..close {
                let Some(tok) = ctx.next_code(p, 0) else {
                    break;
                };
                if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                    depth += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
                    depth -= 1;
                } else if tok.is_punct(';') && depth == 1 {
                    semi = Some(p);
                    break;
                }
            }
            if let Some(semi) = semi {
                audit_size_expr(ctx, pos, semi + 1, close, "vec![_; n]", out);
            }
        }
    }
}

fn audit_size_expr(
    ctx: &FileCtx,
    site: usize,
    lo: usize,
    hi: usize,
    what: &str,
    out: &mut Vec<Finding>,
) {
    let suspects = suspect_paths(ctx, lo, hi);
    if suspects.is_empty() {
        return;
    }
    let checked = match ctx.enclosing_fn(site) {
        Some(f) => checked_paths(ctx, f.open, f.close, Strictness::Strict),
        None => Default::default(),
    };
    let unchecked: Vec<String> = suspects
        .iter()
        .filter(|s| !checked.contains(&s.text))
        .map(|s| s.text.clone())
        .collect();
    if unchecked.is_empty() {
        return;
    }
    let line = ctx.next_code(site, 0).map(|t| t.line).unwrap_or(1);
    emit(
        out,
        ctx,
        Finding {
            file: ctx.path.clone(),
            line,
            rule: RuleId::L5,
            message: format!(
                "`{what}` sized by unchecked value(s) {} in a wire/protocol module",
                unchecked.join(", ")
            ),
            hint: "compare the size against a MAX_*/limit constant (or clamp with \
                   `.min(LIMIT)`) before allocating — check-before-allocate"
                .to_string(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("t.rs", src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn unchecked_wire_length_allocation_is_flagged() {
        let f = run("fn f(declared: usize) -> Vec<u8> { vec![0u8; declared] }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::L5);
        assert!(f[0].message.contains("declared"));
    }

    #[test]
    fn checked_allocation_passes() {
        let src = "fn f(n: u64, limits: &Limits) -> Result<Vec<u8>, E> {\n\
                   if n > limits.max_payload as u64 { return Err(E::Too); }\n\
                   Ok(vec![0u8; n as usize])\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn screaming_const_guard_passes() {
        let src = "fn f(n: usize) -> Vec<u8> { assert!(n <= MAX_BODY); vec![0u8; n] }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn min_clamp_passes() {
        let src = "fn f(n: usize) -> Vec<u8> { let n = n.min(MAX_BODY); Vec::with_capacity(n) }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn literal_and_const_sizes_are_exempt() {
        let src = "fn f(h: &[u8]) -> Vec<u8> { let mut v = Vec::with_capacity(256 + h.len()); \
                   v.resize(FRAME_PREAMBLE_BYTES, 0); v }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn resize_size_argument_is_audited() {
        let f = run("fn f(buf: &mut Vec<u8>, n: usize) { buf.resize(n, 0); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("resize"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(n: usize) { let _ = vec![0u8; n]; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "fn f(n: usize) -> Vec<u8> {\n    // lint:allow(L5): n is the element count \
                   of an in-memory plan, not wire data\n    vec![0u8; n]\n}\n";
        assert!(run(src).is_empty());
    }
}
