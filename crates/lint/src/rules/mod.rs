//! The five project-specific rules and their shared analysis helpers.
//!
//! Each rule is a pure function from a [`FileCtx`] (plus workspace-wide
//! context where needed) to a list of [`Finding`]s. Rules never panic
//! and never read files themselves — the runner owns I/O.
//!
//! ## Waivers
//!
//! Any finding can be suppressed at the site with a justified waiver
//! comment, adjacent the same way `// SAFETY:` must be:
//!
//! ```text
//! // lint:allow(L3): lock poisoning is unrecoverable; propagating
//! // would poison every caller with an impossible error arm.
//! let guard = self.inner.lock().unwrap();
//! ```
//!
//! A waiver **must** carry a reason after the `):` — a bare
//! `lint:allow(L3)` does not suppress, it produces a finding asking for
//! the justification. Waivers are for debt that is *correct but
//! unprovable to the lint*; wrong code should be fixed, and tolerated
//! legacy debt belongs in the ratcheted baseline instead.

pub mod atomics;
pub mod flow;
pub mod panic_freedom;
pub mod target_feature;
pub mod unsafe_comment;
pub mod wire_alloc;

use crate::cursor::FileCtx;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    L1,
    /// `#[target_feature]` function called outside its ISA family and
    /// outside an allowlisted dispatch module.
    L2,
    /// Panicking construct in library code of a panic-free crate.
    L3,
    /// `Ordering::Relaxed` without an adjacent `// ORDERING:`
    /// justification.
    L4,
    /// Wire-derived allocation size without a preceding limit check.
    L5,
}

impl RuleId {
    /// Stable string form (`"L1"` … `"L5"`), used in reports, waivers,
    /// and the baseline file.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
        }
    }

    /// Parse the string form back; `None` for unknown ids.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "L3" => Some(RuleId::L3),
            "L4" => Some(RuleId::L4),
            "L5" => Some(RuleId::L5),
            _ => None,
        }
    }

    /// Human name of the rule, for report headers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::L1 => "unsafe-safety-comment",
            RuleId::L2 => "target-feature-containment",
            RuleId::L3 => "panic-freedom",
            RuleId::L4 => "atomics-ordering-audit",
            RuleId::L5 => "wire-allocation-hygiene",
        }
    }
}

/// One diagnostic: where, which rule, what, and how to fix it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule that fired.
    pub rule: RuleId,
    /// What is wrong, specifically.
    pub message: String,
    /// How to make the finding go away legitimately.
    pub hint: String,
}

/// Result of looking for a waiver at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiver {
    /// No waiver comment for this rule at the site.
    None,
    /// A `lint:allow(rule): reason` with a non-empty reason.
    Justified,
    /// A `lint:allow(rule)` with no reason text — not honored.
    MissingReason,
}

/// Check for a `lint:allow(…)` waiver adjacent to `line` (same
/// placement rules as `// SAFETY:` markers). The rule id must be listed
/// inside the parens and a non-empty reason must follow.
pub fn waiver_at(ctx: &FileCtx, line: u32, rule: RuleId) -> Waiver {
    let text = ctx.adjacent_plain_comment_text(line);
    let mut best = Waiver::None;
    let mut rest = text.as_str();
    while let Some(at) = rest.find("lint:allow(") {
        let after = &rest[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let ids = &after[..close];
        let listed = ids.split(',').any(|id| RuleId::parse(id) == Some(rule));
        if listed {
            let reason = after[close + 1..]
                .trim_start_matches(':')
                .chars()
                .any(|c| c.is_alphanumeric());
            if reason {
                return Waiver::Justified;
            }
            best = Waiver::MissingReason;
        }
        rest = &after[close + 1..];
    }
    best
}

/// Push `finding` unless a justified waiver covers it; a waiver missing
/// its reason converts the finding into a demand for the reason.
pub fn emit(out: &mut Vec<Finding>, ctx: &FileCtx, mut finding: Finding) {
    match waiver_at(ctx, finding.line, finding.rule) {
        Waiver::Justified => {}
        Waiver::MissingReason => {
            finding.message = format!(
                "{} (waiver present but missing its reason)",
                finding.message
            );
            finding.hint =
                "a waiver must justify itself: `// lint:allow(RULE): reason`".to_string();
            out.push(finding);
        }
        Waiver::None => out.push(finding),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("t.rs", src)
    }

    #[test]
    fn waiver_requires_listed_rule_and_reason() {
        let c = ctx("// lint:allow(L3): lock poisoning is unrecoverable\nx.unwrap();\n");
        assert_eq!(waiver_at(&c, 2, RuleId::L3), Waiver::Justified);
        assert_eq!(waiver_at(&c, 2, RuleId::L4), Waiver::None);

        let c = ctx("// lint:allow(L3)\nx.unwrap();\n");
        assert_eq!(waiver_at(&c, 2, RuleId::L3), Waiver::MissingReason);
    }

    #[test]
    fn waiver_accepts_rule_lists() {
        let c = ctx("// lint:allow(L3, L5): fixture data, size is a test constant\nx.unwrap();\n");
        assert_eq!(waiver_at(&c, 2, RuleId::L3), Waiver::Justified);
        assert_eq!(waiver_at(&c, 2, RuleId::L5), Waiver::Justified);
    }

    #[test]
    fn waiver_in_doc_comment_does_not_count() {
        let c = ctx("/// lint:allow(L3): docs are not waivers\nx.unwrap();\n");
        assert_eq!(waiver_at(&c, 2, RuleId::L3), Waiver::None);
    }
}
