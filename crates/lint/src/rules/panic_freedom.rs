//! **L3 — panic-freedom.** The `core`/`netstore`/`server`/`exec`
//! crates promise "typed error, never a panic" to their callers — the
//! server literally streams typed REJECT frames for every failure mode.
//! A stray `unwrap()` in those crates turns a malformed request or a
//! poisoned shard into a worker-thread abort.
//!
//! Forbidden in non-test library code of the configured crates:
//! `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!`,
//! `unreachable!`. In wire/protocol modules, slice indexing with an
//! index that is never bounds-related anywhere in the function is
//! flagged too (`buf[got..]` under a `got < buf.len()` loop guard is
//! fine; `buf[declared_len]` with no relation to any bound is not).
//!
//! Lock-poisoning `unwrap`s on `std::sync::Mutex` are the sanctioned
//! exception: waive them with `// lint:allow(L3): …` naming why
//! propagation is worse (the project convention is that a poisoned
//! lock is a crashed peer thread — already a bug — and unwinding the
//! gate is the least-bad response).

use super::flow::{checked_paths, matching_close, suspect_paths, Strictness};
use super::{emit, Finding, RuleId};
use crate::cursor::FileCtx;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Run L3 over one file. `wire_module` additionally enables the
/// indexing check (the caller decides from configuration).
pub fn check(ctx: &FileCtx, wire_module: bool, out: &mut Vec<Finding>) {
    for pos in 0..ctx.code.len() {
        let Some(t) = ctx.next_code(pos, 0) else {
            break;
        };
        if ctx.in_test(pos) {
            continue;
        }
        // .unwrap() / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && ctx.prev_code(pos, 1).is_some_and(|p| p.is_punct('.'))
            && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('('))
        {
            emit(
                out,
                ctx,
                Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RuleId::L3,
                    message: format!("`.{}(…)` in non-test library code", t.text),
                    hint: "propagate a typed error (`MdrError`/`HttpError`/`WireError`) \
                           instead; a mechanical lock-poisoning unwrap may be waived with \
                           `// lint:allow(L3): reason`"
                        .to_string(),
                },
            );
            continue;
        }
        // panic!/todo!/unimplemented!/unreachable!
        if PANIC_MACROS.contains(&t.text.as_str())
            && ctx.next_code(pos, 1).is_some_and(|n| n.is_punct('!'))
        {
            emit(
                out,
                ctx,
                Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RuleId::L3,
                    message: format!("`{}!` in non-test library code", t.text),
                    hint: "return a typed error variant; if the state is truly impossible, \
                           prove it to the reader with `// lint:allow(L3): reason`"
                        .to_string(),
                },
            );
            continue;
        }
        // Indexing in wire/protocol modules.
        if wire_module && t.is_punct('[') {
            // After these keywords a `[` opens an array literal, not an
            // index expression (`for x in [..]`, `return [..]`, …).
            const EXPR_KEYWORDS: &[&str] = &[
                "in", "return", "if", "else", "match", "break", "while", "loop", "let", "move",
            ];
            let indexes_value = ctx.prev_code(pos, 1).is_some_and(|p| {
                (p.kind == crate::lexer::TokKind::Ident
                    && !EXPR_KEYWORDS.contains(&p.text.as_str()))
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            // `#[…]` attributes and `vec![…]` are not index expressions.
            let attr_or_macro = ctx
                .prev_code(pos, 1)
                .is_some_and(|p| p.is_punct('#') || p.is_punct('!'));
            if !indexes_value || attr_or_macro {
                continue;
            }
            let Some(close) = matching_close(ctx, pos) else {
                continue;
            };
            let suspects = suspect_paths(ctx, pos + 1, close);
            if suspects.is_empty() {
                continue;
            }
            let Some(f) = ctx.enclosing_fn(pos) else {
                continue;
            };
            let checked = checked_paths(ctx, f.open, f.close, Strictness::Loose);
            let unchecked: Vec<String> = suspects
                .iter()
                .filter(|s| !checked.contains(&s.text))
                .map(|s| s.text.clone())
                .collect();
            if unchecked.is_empty() {
                continue;
            }
            emit(
                out,
                ctx,
                Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RuleId::L3,
                    message: format!(
                        "slice indexing with unchecked value(s) {} in a wire/protocol path",
                        unchecked.join(", ")
                    ),
                    hint: "use `.get(…)` and return a typed error, or establish the bound \
                           in this function before indexing"
                        .to_string(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, wire: bool) -> Vec<Finding> {
        let ctx = FileCtx::new("t.rs", src);
        let mut out = Vec::new();
        check(&ctx, wire, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_in_library_code_are_flagged() {
        let f = run(
            "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n}\n",
            false,
        );
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].rule, f[0].line), (RuleId::L3, 2));
        assert_eq!((f[1].rule, f[1].line), (RuleId::L3, 3));
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = run("fn f() { panic!(\"boom\"); todo!(); }\n", false);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn unwrap_in_string_literal_is_not_flagged() {
        assert!(run("fn f() { let s = \"call .unwrap() later\"; }\n", false).is_empty());
    }

    #[test]
    fn waived_lock_poisoning_unwrap_passes() {
        let src =
            "fn f() {\n    // lint:allow(L3): poisoned lock means a peer already crashed\n    \
                   let g = m.lock().unwrap();\n}\n";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn unchecked_wire_index_is_flagged_only_in_wire_modules() {
        let src = "fn f(buf: &[u8], declared: usize) { let b = buf[declared]; }\n";
        assert_eq!(run(src, true).len(), 1);
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn loop_guarded_index_passes() {
        let src =
            "fn f(buf: &mut [u8]) { let mut got = 0; while got < buf.len() { t(&mut buf[got..]); } }\n";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn literal_index_passes() {
        assert!(run(
            "fn f(rest: &[u8]) { let k = rest[0]; let r = &rest[1..5]; }\n",
            true
        )
        .is_empty());
    }

    #[test]
    fn array_literal_after_keyword_is_not_indexing() {
        let src = "fn f(s: &S) {\n    for (c, b) in [(&s.fail_first, 1), (&s.drop_first, 2)] {\n        t(c, b);\n    }\n}\n";
        assert!(run(src, true).is_empty());
    }
}
