//! Per-file analysis context over the token stream: code-token cursor,
//! comment adjacency, attribute regions, and a lightweight scope map
//! (functions, modules, `#[cfg(test)]` subtrees, `#[target_feature]`
//! functions).
//!
//! Every rule consumes a [`FileCtx`], built once per file. The scope
//! map is deliberately *not* a parser: it tracks item attributes and
//! brace nesting, which is exactly enough to answer the three questions
//! the rules ask — "is this token inside test-only code?", "which
//! function body am I in?", and "is that function `#[target_feature]`,
//! and for which ISA family?".

use crate::lexer::{lex, Tok, TokKind};
use std::collections::{BTreeSet, HashMap};

/// ISA family of a `#[target_feature(enable = "…")]` attribute, used by
/// the containment rule: calls may only cross between functions of the
/// same family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// x86/x86_64 vector features (avx*, sse*, fma, bmi*, …).
    X86,
    /// AArch64 vector features (neon, sve, …).
    Arm,
    /// Anything else: treated as its own family by feature name.
    Other,
}

/// Map a feature string to its [`Family`].
pub fn family_of(feature: &str) -> Family {
    let f = feature.to_ascii_lowercase();
    if f.starts_with("avx")
        || f.starts_with("sse")
        || f.starts_with("fma")
        || f.starts_with("bmi")
        || f == "pclmulqdq"
        || f == "popcnt"
    {
        Family::X86
    } else if f == "neon" || f.starts_with("sve") || f == "dotprod" {
        Family::Arm
    } else {
        Family::Other
    }
}

/// One brace-delimited scope opened by an item (`fn`, `mod`, `impl`,
/// `trait`, or similar).
#[derive(Debug, Clone)]
pub struct Scope {
    /// Item keyword that opened this scope (`"fn"`, `"mod"`, …).
    pub kind: String,
    /// Item name, when one follows the keyword (`impl` blocks have
    /// none worth resolving).
    pub name: Option<String>,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (or end of stream when
    /// unbalanced).
    pub close: usize,
    /// True when this item — or any enclosing item — is test-only
    /// (`#[cfg(test)]`, `#[test]`).
    pub is_test: bool,
    /// `Some(family)` when the item carries `#[target_feature]`.
    pub target_feature: Option<Family>,
}

/// Everything the rules need to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Scopes in opening order (outer before inner).
    pub scopes: Vec<Scope>,
    /// Lines (1-based) whose only non-comment tokens belong to outer
    /// attributes `#[…]`.
    attr_lines: BTreeSet<u32>,
    /// Lines that contain at least one comment and no code tokens.
    comment_only_lines: BTreeSet<u32>,
    /// Lines with at least one token of any kind.
    occupied_lines: BTreeSet<u32>,
    /// line → concatenated text of *plain* (non-doc) comments on it.
    plain_comments: HashMap<u32, String>,
}

impl FileCtx {
    /// Lex and analyze one file.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();

        let mut occupied_lines = BTreeSet::new();
        let mut comment_lines = BTreeSet::new();
        let mut code_lines = BTreeSet::new();
        let mut plain_comments: HashMap<u32, String> = HashMap::new();
        for t in &toks {
            for l in t.line..=t.end_line() {
                occupied_lines.insert(l);
            }
            if t.is_comment() {
                for l in t.line..=t.end_line() {
                    comment_lines.insert(l);
                }
                if is_plain_comment(t) {
                    for l in t.line..=t.end_line() {
                        plain_comments.entry(l).or_default().push_str(&t.text);
                    }
                }
            } else {
                for l in t.line..=t.end_line() {
                    code_lines.insert(l);
                }
            }
        }

        let attr_regions = find_attr_regions(&toks, &code);
        // A line is attribute-only when every code token on it sits in
        // some attribute region.
        let mut attr_token_lines = BTreeSet::new();
        let mut non_attr_code_lines = BTreeSet::new();
        for (pos, &ti) in code.iter().enumerate() {
            let in_attr = attr_regions.iter().any(|&(a, b)| (a..=b).contains(&pos));
            for l in toks[ti].line..=toks[ti].end_line() {
                if in_attr {
                    attr_token_lines.insert(l);
                } else {
                    non_attr_code_lines.insert(l);
                }
            }
        }
        let attr_lines: BTreeSet<u32> = attr_token_lines
            .difference(&non_attr_code_lines)
            .copied()
            .collect();
        let comment_only_lines: BTreeSet<u32> =
            comment_lines.difference(&code_lines).copied().collect();

        let scopes = build_scopes(&toks, &code, &attr_regions);

        FileCtx {
            path: path.to_string(),
            toks,
            code,
            scopes,
            attr_lines,
            comment_only_lines,
            occupied_lines,
            plain_comments,
        }
    }

    /// The code token following `code[pos]`, if any.
    pub fn next_code(&self, pos: usize, ahead: usize) -> Option<&Tok> {
        self.code.get(pos + ahead).map(|&i| &self.toks[i])
    }

    /// The code token preceding `code[pos]` by `back` steps, if any.
    pub fn prev_code(&self, pos: usize, back: usize) -> Option<&Tok> {
        pos.checked_sub(back)
            .and_then(|p| self.code.get(p))
            .map(|&i| &self.toks[i])
    }

    /// Is there a plain `// MARKER` comment on `line`, or on the block
    /// of comment/attribute lines *immediately* above it? A blank line
    /// or an unrelated code line breaks the chain, so the marker really
    /// is adjacent to the site it justifies. Doc comments (`///`,
    /// `//!`) deliberately do not count: documentation is for callers,
    /// these markers are auditable claims about the site itself.
    pub fn has_adjacent_marker(&self, line: u32, marker: &str) -> bool {
        if self.line_has_marker(line, marker) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.comment_only_lines.contains(&l) {
                if self.line_has_marker(l, marker) {
                    return true;
                }
            } else if !self.attr_lines.contains(&l) {
                // Code line, blank line, or start of file: chain ends.
                return false;
            }
            if !self.occupied_lines.contains(&l) {
                return false;
            }
            l -= 1;
        }
        false
    }

    /// Concatenated text of all plain comments adjacent to `line`: the
    /// line's own trailing comment plus the contiguous comment/attribute
    /// block immediately above (same chain rule as
    /// [`FileCtx::has_adjacent_marker`]).
    pub fn adjacent_plain_comment_text(&self, line: u32) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.comment_only_lines.contains(&l) {
                if let Some(text) = self.plain_comments.get(&l) {
                    parts.push(text);
                }
            } else if !self.attr_lines.contains(&l) {
                break;
            }
            l -= 1;
        }
        parts.reverse();
        if let Some(text) = self.plain_comments.get(&line) {
            parts.push(text);
        }
        parts.join("\n")
    }

    fn line_has_marker(&self, line: u32, marker: &str) -> bool {
        self.plain_comments
            .get(&line)
            .is_some_and(|text| text.contains(marker))
    }

    /// Innermost scope containing code position `pos` (an index into
    /// `self.code`), if any.
    pub fn innermost_scope(&self, pos: usize) -> Option<&Scope> {
        self.scopes.iter().rfind(|s| s.open < pos && pos < s.close)
    }

    /// True when the code position sits inside test-only code.
    pub fn in_test(&self, pos: usize) -> bool {
        self.scopes
            .iter()
            .any(|s| s.is_test && s.open < pos && pos < s.close)
    }

    /// Innermost *function* scope containing code position `pos`.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&Scope> {
        self.scopes
            .iter()
            .rfind(|s| s.kind == "fn" && s.open < pos && pos < s.close)
    }
}

/// True for `//`-comments that are not doc comments, and `/*`-comments
/// that are not `/**`/`/*!` doc blocks.
fn is_plain_comment(t: &Tok) -> bool {
    match t.kind {
        TokKind::LineComment => !t.text.starts_with("///") && !t.text.starts_with("//!"),
        TokKind::BlockComment => {
            // `/**/` is empty-plain; `/**x` and `/*!` are doc blocks.
            !(t.text.starts_with("/*!") || (t.text.starts_with("/**") && t.text.len() > 4))
        }
        _ => false,
    }
}

/// Outer-attribute regions as inclusive `(start, end)` ranges over code
/// *positions* (indices into the `code` vector): `#` `[` … `]` with
/// bracket balancing. Inner attributes (`#![…]`) are included too —
/// rules treat both as "attribute, not code".
fn find_attr_regions(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut pos = 0usize;
    while pos < code.len() {
        let t = &toks[code[pos]];
        let next = |ahead: usize| code.get(pos + ahead).map(|&i| &toks[i]);
        let open_at = if t.is_punct('#') {
            if next(1).is_some_and(|t| t.is_punct('[')) {
                Some(pos + 1)
            } else if next(1).is_some_and(|t| t.is_punct('!'))
                && next(2).is_some_and(|t| t.is_punct('['))
            {
                Some(pos + 2)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(open) = open_at {
            let mut depth = 0usize;
            let mut j = open;
            while j < code.len() {
                let tj = &toks[code[j]];
                if tj.is_punct('[') {
                    depth += 1;
                } else if tj.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            regions.push((pos, j.min(code.len().saturating_sub(1))));
            pos = j + 1;
        } else {
            pos += 1;
        }
    }
    regions
}

/// One parsed attribute: its code-position span and flattened ident
/// stream (e.g. `["cfg", "test"]`, `["target_feature", "enable"]` plus
/// the feature string resolved separately).
struct Attr {
    is_test: bool,
    target_feature: Option<Family>,
}

fn parse_attr(toks: &[Tok], code: &[usize], span: (usize, usize)) -> Attr {
    let hi = span.1.min(code.len().saturating_sub(1));
    let items: Vec<&Tok> = (span.0..=hi).map(|p| &toks[code[p]]).collect();
    let first_ident = items.iter().find(|t| t.kind == TokKind::Ident);
    let mut is_test = false;
    let mut target_feature = None;
    match first_ident.map(|t| t.text.as_str()) {
        Some("test") => is_test = true,
        Some("cfg") => {
            // `test` counts only outside a `not(…)` group.
            let mut not_depth = 0usize;
            let mut paren_stack: Vec<bool> = Vec::new();
            let mut k = 0usize;
            while k < items.len() {
                let t = items[k];
                if t.is_punct('(') {
                    let negated = k > 0 && items[k - 1].is_ident("not");
                    paren_stack.push(negated);
                    if negated {
                        not_depth += 1;
                    }
                } else if t.is_punct(')') {
                    if let Some(negated) = paren_stack.pop() {
                        if negated {
                            not_depth -= 1;
                        }
                    }
                } else if t.is_ident("test") && not_depth == 0 {
                    is_test = true;
                }
                k += 1;
            }
        }
        Some("target_feature") => {
            // enable = "feat" — take the first string literal.
            if let Some(s) = items.iter().find(|t| t.kind == TokKind::Str) {
                let feat = s.text.trim_matches('"');
                target_feature = Some(family_of(feat));
            }
        }
        _ => {}
    }
    Attr {
        is_test,
        target_feature,
    }
}

const ITEM_KEYWORDS: &[&str] = &["fn", "mod", "impl", "trait", "struct", "enum", "union"];

/// Build the scope list: track pending outer attributes, bind them to
/// the next item keyword, and open a scope at that item's body brace.
fn build_scopes(toks: &[Tok], code: &[usize], attr_regions: &[(usize, usize)]) -> Vec<Scope> {
    struct Open {
        scope: Scope,
        depth: usize,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut open_stack: Vec<Open> = Vec::new();
    let mut pending_attrs: Vec<Attr> = Vec::new();
    // (kind, name, is_test, tf) of an item seen but whose `{` has not
    // arrived yet.
    let mut pending_item: Option<(String, Option<String>, bool, Option<Family>)> = None;
    let mut depth = 0usize;
    // Paren/bracket nesting, so a `;` inside `[u32; 4]` or a default
    // argument does not kill the pending item.
    let mut delim = 0usize;
    let mut region_iter = attr_regions.iter().peekable();

    let mut pos = 0usize;
    while pos < code.len() {
        if let Some(&&(a, b)) = region_iter.peek() {
            if pos == a {
                pending_attrs.push(parse_attr(toks, code, (a, b)));
                region_iter.next();
                pos = b + 1;
                continue;
            }
        }
        let t = &toks[code[pos]];
        if t.is_punct('(') || t.is_punct('[') {
            delim += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            delim = delim.saturating_sub(1);
        }
        if t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
            // `fn` in a function-pointer type (`unsafe fn(…)`) has no
            // name; only a named item opens a scope.
            let name = match (t.text.as_str(), code.get(pos + 1).map(|&i| &toks[i])) {
                ("impl", _) => None,
                (_, Some(n)) if n.kind == TokKind::Ident => Some(n.text.clone()),
                _ => None,
            };
            if t.text == "impl" || name.is_some() {
                let is_test = pending_attrs.iter().any(|a| a.is_test);
                let tf = pending_attrs.iter().find_map(|a| a.target_feature);
                pending_item = Some((t.text.clone(), name, is_test, tf));
            }
            pending_attrs.clear();
        } else if t.is_punct('{') {
            depth += 1;
            if let Some((kind, name, is_test, tf)) = pending_item.take() {
                let inherited_test = open_stack.iter().any(|o| o.scope.is_test);
                open_stack.push(Open {
                    scope: Scope {
                        kind,
                        name,
                        open: pos,
                        close: code.len(),
                        is_test: is_test || inherited_test,
                        target_feature: tf,
                    },
                    depth: depth - 1,
                });
            }
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if open_stack.last().is_some_and(|o| o.depth == depth) {
                let mut o = open_stack.pop().expect("guarded by is_some_and");
                o.scope.close = pos;
                scopes.push(o.scope);
            }
        } else if t.is_punct(';') && delim == 0 {
            // `fn f();` in a trait, `struct S;`: the item never opens.
            // A `;` nested in brackets (`[u32; 4]` in a signature) is
            // part of the item, not its end.
            pending_item = None;
        }
        pos += 1;
    }
    // Any scope left open (unbalanced braces) closes at EOF.
    while let Some(mut o) = open_stack.pop() {
        o.scope.close = code.len();
        scopes.push(o.scope);
    }
    scopes.sort_by_key(|s| s.open);
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("test.rs", src)
    }

    #[test]
    fn adjacent_marker_same_line_and_above() {
        let c = ctx("// SAFETY: fine\nunsafe { x() };\nlet y = unsafe { z() }; // SAFETY: ok\n");
        assert!(c.has_adjacent_marker(2, "SAFETY:"));
        assert!(c.has_adjacent_marker(3, "SAFETY:"));
    }

    #[test]
    fn blank_line_breaks_marker_chain() {
        let c = ctx("// SAFETY: far away\n\nunsafe { x() };\n");
        assert!(!c.has_adjacent_marker(3, "SAFETY:"));
    }

    #[test]
    fn attributes_do_not_break_marker_chain() {
        let c =
            ctx("// SAFETY: isa checked\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n");
        assert!(c.has_adjacent_marker(3, "SAFETY:"));
    }

    #[test]
    fn doc_comments_are_not_markers() {
        let c = ctx(
            "//! SAFETY: module docs\nunsafe fn k() {}\n/// SAFETY: outer doc\nunsafe fn j() {}\n",
        );
        assert!(!c.has_adjacent_marker(2, "SAFETY:"));
        assert!(!c.has_adjacent_marker(4, "SAFETY:"));
    }

    #[test]
    fn cfg_test_scopes_nest() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n";
        let c = ctx(src);
        let lib_unwrap = c
            .code
            .iter()
            .position(|&i| c.toks[i].is_ident("unwrap"))
            .unwrap();
        assert!(!c.in_test(lib_unwrap));
        let test_unwrap = c
            .code
            .iter()
            .rposition(|&i| c.toks[i].is_ident("unwrap"))
            .unwrap();
        assert!(c.in_test(test_unwrap));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let c = ctx("#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }\n");
        let p = c
            .code
            .iter()
            .position(|&i| c.toks[i].is_ident("unwrap"))
            .unwrap();
        assert!(!c.in_test(p));
    }

    #[test]
    fn target_feature_function_scope_carries_family() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn kern() { body(); }\n";
        let c = ctx(src);
        let body = c
            .code
            .iter()
            .position(|&i| c.toks[i].is_ident("body"))
            .unwrap();
        let f = c.enclosing_fn(body).unwrap();
        assert_eq!(f.target_feature, Some(Family::X86));
        assert_eq!(f.name.as_deref(), Some("kern"));
    }

    #[test]
    fn array_type_in_signature_keeps_the_item_pending() {
        let src =
            "#[target_feature(enable = \"avx2\")]\nunsafe fn kern(x: &mut [u32; 4]) { body(); }\n";
        let c = ctx(src);
        let body = c
            .code
            .iter()
            .position(|&i| c.toks[i].is_ident("body"))
            .unwrap();
        let f = c.enclosing_fn(body).unwrap();
        assert_eq!(f.target_feature, Some(Family::X86));
        assert_eq!(f.name.as_deref(), Some("kern"));
    }

    #[test]
    fn fn_pointer_type_opens_no_scope() {
        let c = ctx("pub type F = unsafe fn(&mut [u32; 32]);\nfn real() {}\n");
        assert_eq!(c.scopes.iter().filter(|s| s.kind == "fn").count(), 1);
    }
}
