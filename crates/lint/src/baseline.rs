//! `lint.toml`: rule configuration plus the **ratcheted debt
//! baseline**.
//!
//! The baseline records, per `(rule, file)`, how many findings existed
//! when the debt was last accepted. A run fails only when a count
//! *exceeds* its baseline — new violations are stopped at the door
//! while existing debt is burned down deliberately. Counts may only
//! decrease: `--update-baseline` refuses to raise any entry (fix the
//! new violation instead), and `--allow-growth` exists solely for
//! bootstrap and for onboarding a newly written rule.
//!
//! The file is a deliberately small TOML subset (strings, integers,
//! string arrays, `[config]`, repeated `[[debt]]` tables) parsed and
//! written by hand — this crate must not depend on anything, including
//! the workspace's own serde shims, so it can audit them.

use crate::rules::RuleId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Key of one debt entry: which rule, in which workspace-relative file.
pub type DebtKey = (RuleId, String);

/// Parsed contents of `lint.toml`.
#[derive(Debug, Clone)]
pub struct LintFile {
    /// Rule configuration.
    pub config: Config,
    /// Accepted debt per `(rule, file)`.
    pub debt: BTreeMap<DebtKey, u64>,
}

/// Rule configuration (the `[config]` table).
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names under `crates/` whose library code must be
    /// panic-free (L3).
    pub panic_crates: Vec<String>,
    /// Workspace-relative paths of wire/protocol modules (L5 scope and
    /// the L3 indexing check).
    pub wire_modules: Vec<String>,
    /// Workspace-relative paths of `Isa`-gated dispatch modules allowed
    /// to call `#[target_feature]` kernels (L2).
    pub dispatch_modules: Vec<String>,
    /// Files whose `Ordering::Relaxed` sites are accepted wholesale
    /// (L4); empty in this repository — annotate instead.
    pub relaxed_allow_files: Vec<String>,
    /// Directories (relative to the workspace root) scanned for `.rs`
    /// sources.
    pub scan_roots: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            panic_crates: ["core", "netstore", "server", "exec"]
                .map(String::from)
                .to_vec(),
            wire_modules: Vec::new(),
            dispatch_modules: Vec::new(),
            relaxed_allow_files: Vec::new(),
            scan_roots: ["crates", "examples", "tests", "shims"]
                .map(String::from)
                .to_vec(),
        }
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug)]
pub struct ParseError {
    /// Line number in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse the TOML subset. Unknown keys are ignored (forward
/// compatibility); malformed lines are errors.
pub fn parse(src: &str) -> Result<LintFile, ParseError> {
    enum Section {
        None,
        Config,
        Debt,
    }
    let mut config = Config::default();
    let mut debt: BTreeMap<DebtKey, u64> = BTreeMap::new();
    let mut section = Section::None;
    let mut cur_rule: Option<RuleId> = None;
    let mut cur_file: Option<String> = None;
    let mut cur_count: Option<u64> = None;

    let mut flush = |rule: &mut Option<RuleId>,
                     file: &mut Option<String>,
                     count: &mut Option<u64>,
                     line: usize|
     -> Result<(), ParseError> {
        match (rule.take(), file.take(), count.take()) {
            (None, None, None) => Ok(()),
            (Some(r), Some(f), Some(c)) => {
                debt.insert((r, f), c);
                Ok(())
            }
            _ => Err(ParseError {
                line,
                message: "a [[debt]] entry needs all of rule, file, count".to_string(),
            }),
        }
    };

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let raw = strip_comment(lines[i]);
        let line = raw.trim();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "[config]" {
            flush(&mut cur_rule, &mut cur_file, &mut cur_count, lineno)?;
            section = Section::Config;
            continue;
        }
        if line == "[[debt]]" {
            flush(&mut cur_rule, &mut cur_file, &mut cur_count, lineno)?;
            section = Section::Debt;
            continue;
        }
        if line.starts_with('[') {
            return Err(ParseError {
                line: lineno,
                message: format!("unknown section {line}"),
            });
        }
        let Some(eq) = line.find('=') else {
            return Err(ParseError {
                line: lineno,
                message: "expected `key = value`".to_string(),
            });
        };
        let key = line[..eq].trim();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            while i < lines.len() {
                let cont = strip_comment(lines[i]);
                value.push(' ');
                value.push_str(cont.trim());
                i += 1;
                if balanced_array(&value) {
                    break;
                }
            }
        }
        match section {
            Section::Config => match key {
                "panic_crates" => config.panic_crates = parse_string_array(&value, lineno)?,
                "wire_modules" => config.wire_modules = parse_string_array(&value, lineno)?,
                "dispatch_modules" => config.dispatch_modules = parse_string_array(&value, lineno)?,
                "relaxed_allow_files" => {
                    config.relaxed_allow_files = parse_string_array(&value, lineno)?
                }
                "scan_roots" => config.scan_roots = parse_string_array(&value, lineno)?,
                _ => {}
            },
            Section::Debt => match key {
                "rule" => {
                    let s = parse_string(&value, lineno)?;
                    cur_rule = Some(RuleId::parse(&s).ok_or(ParseError {
                        line: lineno,
                        message: format!("unknown rule id {s:?}"),
                    })?);
                }
                "file" => cur_file = Some(parse_string(&value, lineno)?),
                "count" => {
                    cur_count = Some(value.parse::<u64>().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("count must be a non-negative integer, got {value:?}"),
                    })?)
                }
                _ => {}
            },
            Section::None => match key {
                "version" => {}
                _ => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("key {key:?} outside any section"),
                    })
                }
            },
        }
    }
    flush(&mut cur_rule, &mut cur_file, &mut cur_count, lines.len())?;
    Ok(LintFile { config, debt })
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, line: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError {
            line,
            message: format!("expected a quoted string, got {value:?}"),
        })
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let v = value.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(ParseError {
            line,
            message: format!("expected an array of strings, got {value:?}"),
        });
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

/// Serialize config + debt back to `lint.toml` form.
pub fn render(file: &LintFile) -> String {
    let mut s = String::new();
    s.push_str(
        "# hpmdr-lint configuration and ratcheted debt baseline.\n\
         #\n\
         # Counts may only decrease. A run fails when any (rule, file) count\n\
         # exceeds its entry here; burn debt down, then refresh with:\n\
         #\n\
         #     cargo run -p hpmdr-lint -- --update-baseline\n\
         #\n\
         # (--update-baseline refuses to raise a count; --allow-growth is for\n\
         # bootstrapping a newly added rule only.)\n\n",
    );
    s.push_str("version = 1\n\n[config]\n");
    let arr = |s: &mut String, key: &str, items: &[String]| {
        if items.is_empty() {
            let _ = writeln!(s, "{key} = []");
        } else {
            let _ = writeln!(s, "{key} = [");
            for item in items {
                let _ = writeln!(s, "    \"{item}\",");
            }
            let _ = writeln!(s, "]");
        }
    };
    arr(&mut s, "scan_roots", &file.config.scan_roots);
    arr(&mut s, "panic_crates", &file.config.panic_crates);
    arr(&mut s, "wire_modules", &file.config.wire_modules);
    arr(&mut s, "dispatch_modules", &file.config.dispatch_modules);
    arr(
        &mut s,
        "relaxed_allow_files",
        &file.config.relaxed_allow_files,
    );
    for ((rule, path), count) in &file.debt {
        let _ = write!(
            &mut s,
            "\n[[debt]]\nrule = \"{}\"\nfile = \"{path}\"\ncount = {count}\n",
            rule.as_str()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_config_and_debt() {
        let mut debt = BTreeMap::new();
        debt.insert((RuleId::L3, "crates/core/src/api.rs".to_string()), 4);
        debt.insert((RuleId::L4, "crates/server/src/server.rs".to_string()), 2);
        let file = LintFile {
            config: Config {
                wire_modules: vec!["crates/netstore/src/wire.rs".to_string()],
                dispatch_modules: vec!["crates/mgard/src/simd.rs".to_string()],
                ..Config::default()
            },
            debt,
        };
        let text = render(&file);
        let back = parse(&text).unwrap();
        assert_eq!(back.debt, file.debt);
        assert_eq!(back.config.wire_modules, file.config.wire_modules);
        assert_eq!(back.config.panic_crates, file.config.panic_crates);
    }

    #[test]
    fn comments_and_unknown_keys_are_tolerated() {
        let text = "# hi\nversion = 1\n[config]\nfuture_knob = \"x\" # trailing\n\
                    panic_crates = [\"core\"]\n";
        let f = parse(text).unwrap();
        assert_eq!(f.config.panic_crates, ["core"]);
    }

    #[test]
    fn incomplete_debt_entry_is_an_error() {
        let text = "[[debt]]\nrule = \"L1\"\nfile = \"x.rs\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_rule_id_is_an_error() {
        let text = "[[debt]]\nrule = \"L9\"\nfile = \"x.rs\"\ncount = 1\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "[config]\nwire_modules = [\"a#b.rs\"]\n";
        assert_eq!(parse(text).unwrap().config.wire_modules, ["a#b.rs"]);
    }
}
