//! # hpmdr-lint — workspace static analysis for the safety contracts
//!
//! The documented contracts of this codebase — `unsafe` confined to
//! `#[target_feature]` leaf functions with written invariants, the
//! server's "typed error, never a panic" promise, the wire protocol's
//! check-before-allocate rule, relaxed atomics only where nothing is
//! guarded — were, before this crate, enforced by review alone. This
//! binary makes them machine-checked on every commit, the
//! static-analysis mirror of what the `backend_equivalence` suite does
//! for runtime bit-identity.
//!
//! ## The five rules
//!
//! | id | name | contract |
//! |----|------|----------|
//! | L1 | unsafe-safety-comment | every `unsafe` site carries an adjacent `// SAFETY:` invariant |
//! | L2 | target-feature-containment | `#[target_feature]` kernels are called only from same-family kernels or `Isa`-gated dispatch modules |
//! | L3 | panic-freedom | no `unwrap`/`expect`/`panic!`-family in library code of the panic-free crates; no unchecked indexing in wire paths |
//! | L4 | atomics-ordering-audit | every `Ordering::Relaxed` carries an adjacent `// ORDERING:` justification |
//! | L5 | wire-allocation-hygiene | wire-derived allocation sizes are limit-checked before allocating |
//!
//! ## Ratcheted baseline
//!
//! `lint.toml` records accepted debt per `(rule, file)`. Counts may
//! only decrease: new violations fail the run immediately, old ones
//! are burned down deliberately and locked in with
//! `hpmdr-lint --update-baseline`. See [`baseline`].
//!
//! ## Design constraints
//!
//! Zero dependencies — not even the workspace's own shims, because the
//! linter audits them. The lexer ([`lexer`]) is hand-rolled and
//! infallible; the analysis layer ([`cursor`], [`rules::flow`]) is
//! token-stream-based, deliberately *not* a parser: every rule is a
//! local pattern plus just enough scope/attribute context to avoid the
//! classic greps-lie failure modes (raw strings containing `unsafe`,
//! doc comments that look like markers, `#[cfg(test)]` subtrees).

pub mod baseline;
pub mod cursor;
pub mod lexer;
pub mod report;
pub mod rules;

use baseline::LintFile;
use cursor::FileCtx;
use report::Ratchet;
use rules::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How to run the workspace pass.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding `lint.toml` and the scan
    /// roots).
    pub root: PathBuf,
    /// Path to `lint.toml`; defaults to `<root>/lint.toml`.
    pub lint_toml: PathBuf,
    /// Rewrite `lint.toml` with current counts (ratcheting down only,
    /// unless `allow_growth`).
    pub update_baseline: bool,
    /// Allow `--update-baseline` to raise counts / add entries. For
    /// bootstrapping a newly added rule, not for skipping fixes.
    pub allow_growth: bool,
    /// Write the full diagnostic report to this path.
    pub report_path: Option<PathBuf>,
}

impl Options {
    /// Options rooted at `root` with defaults.
    pub fn new(root: impl Into<PathBuf>) -> Options {
        let root = root.into();
        let lint_toml = root.join("lint.toml");
        Options {
            root,
            lint_toml,
            update_baseline: false,
            allow_growth: false,
            report_path: None,
        }
    }
}

/// Everything a run produced; the binary renders this, tests assert on
/// it.
#[derive(Debug)]
pub struct Outcome {
    /// Every finding, accepted debt included, ordered by file then
    /// line.
    pub findings: Vec<Finding>,
    /// Ratchet verdict against the baseline.
    pub ratchet: Ratchet,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Total baseline budget (sum of all debt counts) before the run.
    pub baseline_total: u64,
    /// Full report text (what `--report` writes).
    pub report: String,
    /// Process exit code: 0 clean (or within baseline), 1 ratchet
    /// violation or refused update, 2 configuration/I-O error.
    pub exit_code: i32,
}

/// Errors from the runner itself (not findings).
#[derive(Debug)]
pub enum RunError {
    /// `lint.toml` could not be parsed.
    Baseline(baseline::ParseError),
    /// A filesystem operation failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Baseline(e) => write!(f, "{e}"),
            RunError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for RunError {}

/// Run the full workspace pass.
pub fn run(opts: &Options) -> Result<Outcome, RunError> {
    let lint_file = match std::fs::read_to_string(&opts.lint_toml) {
        Ok(text) => baseline::parse(&text).map_err(RunError::Baseline)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => LintFile {
            config: baseline::Config::default(),
            debt: BTreeMap::new(),
        },
        Err(e) => return Err(RunError::Io(opts.lint_toml.clone(), e)),
    };
    let config = &lint_file.config;

    // Collect and analyze every source file.
    let mut files: Vec<PathBuf> = Vec::new();
    for root in &config.scan_roots {
        collect_rs_files(&opts.root.join(root), &mut files);
    }
    files.sort();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            // Non-UTF-8 or unreadable: nothing lintable.
            continue;
        };
        let rel = rel_path(&opts.root, path);
        ctxs.push(FileCtx::new(&rel, &src));
    }

    // Workspace-wide pass: the target-feature index.
    let mut tf_index = rules::target_feature::TfIndex::new();
    for ctx in &ctxs {
        rules::target_feature::index_file(ctx, &mut tf_index);
    }

    // Per-file rule passes.
    let mut findings: Vec<Finding> = Vec::new();
    for ctx in &ctxs {
        rules::unsafe_comment::check(ctx, &mut findings);
        rules::target_feature::check(ctx, &tf_index, &config.dispatch_modules, &mut findings);
        let wire_module = config.wire_modules.iter().any(|m| m == &ctx.path);
        if in_panic_crate(&ctx.path, &config.panic_crates) {
            rules::panic_freedom::check(ctx, wire_module, &mut findings);
        }
        rules::atomics::check(ctx, &config.relaxed_allow_files, &mut findings);
        if wire_module {
            rules::wire_alloc::check(ctx, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let ratchet = Ratchet::compare(&findings, &lint_file.debt);
    let baseline_total: u64 = lint_file.debt.values().sum();
    let mut exit_code = i32::from(ratchet.failed());

    if opts.update_baseline {
        match ratchet.updated_debt(&findings, opts.allow_growth) {
            Some(debt) => {
                let updated = LintFile {
                    config: lint_file.config.clone(),
                    debt,
                };
                std::fs::write(&opts.lint_toml, baseline::render(&updated))
                    .map_err(|e| RunError::Io(opts.lint_toml.clone(), e))?;
                exit_code = 0;
            }
            None => exit_code = 1,
        }
    }

    let report = report::render_report(&findings, &ratchet, ctxs.len(), baseline_total);
    if let Some(path) = &opts.report_path {
        std::fs::write(path, &report).map_err(|e| RunError::Io(path.clone(), e))?;
    }
    Ok(Outcome {
        files_scanned: ctxs.len(),
        findings,
        ratchet,
        baseline_total,
        report,
        exit_code,
    })
}

/// Does `rel_path` live in the library source of one of the panic-free
/// crates?
fn in_panic_crate(rel_path: &str, panic_crates: &[String]) -> bool {
    panic_crates
        .iter()
        .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")))
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to forward slashes so lint.toml entries are portable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Directory names never scanned: build output, lint fixtures (known-
/// bad sources), VCS internals.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_crate_scoping_is_src_only() {
        let crates = vec!["core".to_string()];
        assert!(in_panic_crate("crates/core/src/api.rs", &crates));
        assert!(!in_panic_crate("crates/mgard/src/grid.rs", &crates));
        assert!(!in_panic_crate("tests/src/lib.rs", &crates));
    }
}
