//! Diagnostic rendering and the ratchet comparison.
//!
//! Findings are grouped per `(rule, file)` and compared against the
//! baseline: groups over budget are **violations** (their findings
//! print and the run fails), groups at budget are accepted debt (they
//! appear only in the full report), and groups under budget are
//! improvements the baseline should be refreshed to lock in.

use crate::baseline::DebtKey;
use crate::rules::{Finding, RuleId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Groups whose count exceeds the baseline, with every finding in
    /// the group (token-level analysis cannot tell old debt from the
    /// new violation, so the whole group prints for triage).
    pub violations: BTreeMap<DebtKey, Vec<Finding>>,
    /// Groups strictly under their baseline: `(key, current, baseline)`.
    pub improvements: Vec<(DebtKey, u64, u64)>,
    /// Baseline entries whose file no longer has findings at all.
    pub stale: Vec<DebtKey>,
}

impl Ratchet {
    /// Compare `findings` against `baseline`.
    pub fn compare(findings: &[Finding], baseline: &BTreeMap<DebtKey, u64>) -> Ratchet {
        let mut counts: BTreeMap<DebtKey, Vec<Finding>> = BTreeMap::new();
        for f in findings {
            counts
                .entry((f.rule, f.file.clone()))
                .or_default()
                .push(f.clone());
        }
        let mut out = Ratchet::default();
        for (key, group) in &counts {
            let budget = baseline.get(key).copied().unwrap_or(0);
            let cur = group.len() as u64;
            if cur > budget {
                out.violations.insert(key.clone(), group.clone());
            } else if cur < budget {
                out.improvements.push((key.clone(), cur, budget));
            }
        }
        for key in baseline.keys() {
            if !counts.contains_key(key) {
                out.stale.push(key.clone());
            }
        }
        out
    }

    /// True when the run should fail.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The debt map a `--update-baseline` run would write: current
    /// counts, with stale entries dropped. Returns `None` when any
    /// group grew and growth is not allowed — the ratchet refuses.
    pub fn updated_debt(
        &self,
        findings: &[Finding],
        allow_growth: bool,
    ) -> Option<BTreeMap<DebtKey, u64>> {
        if self.failed() && !allow_growth {
            return None;
        }
        let mut counts: BTreeMap<DebtKey, u64> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule, f.file.clone())).or_default() += 1;
        }
        Some(counts)
    }
}

/// Render one finding as a single diagnostic line.
pub fn render_finding(f: &Finding) -> String {
    format!(
        "{}:{}: [{}] {}\n    fix: {}",
        f.file,
        f.line,
        f.rule.as_str(),
        f.message,
        f.hint
    )
}

/// Render the full report: every finding (including accepted debt),
/// per-rule totals, and the ratchet verdict. This is what CI uploads as
/// an artifact.
pub fn render_report(
    findings: &[Finding],
    ratchet: &Ratchet,
    files_scanned: usize,
    baseline_total: u64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "hpmdr-lint report");
    let _ = writeln!(s, "=================");
    let _ = writeln!(
        s,
        "files scanned: {files_scanned}; findings: {} (baseline budget: {baseline_total})",
        findings.len()
    );
    let mut per_rule: BTreeMap<RuleId, usize> = BTreeMap::new();
    for f in findings {
        *per_rule.entry(f.rule).or_default() += 1;
    }
    for (rule, n) in &per_rule {
        let _ = writeln!(s, "  {} {}: {n}", rule.as_str(), rule.name());
    }
    if !findings.is_empty() {
        let _ = writeln!(s, "\nall findings (accepted debt included):");
        for f in findings {
            let _ = writeln!(s, "{}", render_finding(f));
        }
    }
    if ratchet.failed() {
        let _ = writeln!(s, "\nRATCHET VIOLATIONS (count exceeds baseline):");
        for ((rule, file), group) in &ratchet.violations {
            let _ = writeln!(s, "  {} in {file}: {} findings", rule.as_str(), group.len());
        }
    }
    if !ratchet.improvements.is_empty() {
        let _ = writeln!(s, "\nimprovements (refresh the baseline to lock in):");
        for ((rule, file), cur, base) in &ratchet.improvements {
            let _ = writeln!(s, "  {} in {file}: {base} -> {cur}", rule.as_str());
        }
    }
    if !ratchet.stale.is_empty() {
        let _ = writeln!(s, "\nstale baseline entries (file now clean):");
        for (rule, file) in &ratchet.stale {
            let _ = writeln!(s, "  {} in {file}", rule.as_str());
        }
    }
    if findings.is_empty() && !ratchet.failed() {
        let _ = writeln!(s, "\nclean: no findings anywhere, no baseline debt in use.");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn over_budget_group_is_a_violation() {
        let findings = vec![
            finding(RuleId::L3, "a.rs", 1),
            finding(RuleId::L3, "a.rs", 2),
        ];
        let mut baseline = BTreeMap::new();
        baseline.insert((RuleId::L3, "a.rs".to_string()), 1);
        let r = Ratchet::compare(&findings, &baseline);
        assert!(r.failed());
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn at_budget_is_quiet_under_budget_improves() {
        let findings = vec![finding(RuleId::L4, "b.rs", 3)];
        let mut baseline = BTreeMap::new();
        baseline.insert((RuleId::L4, "b.rs".to_string()), 1);
        let r = Ratchet::compare(&findings, &baseline);
        assert!(!r.failed() && r.improvements.is_empty());

        baseline.insert((RuleId::L4, "b.rs".to_string()), 5);
        let r = Ratchet::compare(&findings, &baseline);
        assert!(!r.failed());
        assert_eq!(r.improvements.len(), 1);
    }

    #[test]
    fn update_refuses_growth_without_flag() {
        let findings = vec![finding(RuleId::L1, "c.rs", 1)];
        let baseline = BTreeMap::new();
        let r = Ratchet::compare(&findings, &baseline);
        assert!(r.updated_debt(&findings, false).is_none());
        let grown = r.updated_debt(&findings, true).unwrap();
        assert_eq!(grown[&(RuleId::L1, "c.rs".to_string())], 1);
    }

    #[test]
    fn update_drops_stale_entries() {
        let findings: Vec<Finding> = Vec::new();
        let mut baseline = BTreeMap::new();
        baseline.insert((RuleId::L5, "gone.rs".to_string()), 2);
        let r = Ratchet::compare(&findings, &baseline);
        assert_eq!(r.stale.len(), 1);
        assert!(r.updated_debt(&findings, false).unwrap().is_empty());
    }
}
